"""Tests for the parallel, cached co-search engine (``repro.search``).

Covers the acceptance properties of the engine:

* parallel results are bit-identical to serial results (ResNet-50 conv
  layers and the BERT GEMM set),
* cache hit/miss accounting is exact,
* pruning with admissible bounds never drops the optimum (direct checks
  plus a hypothesis property test over random shapes),
* the zero-MAC / empty-model edge cases fail loudly or degrade sanely.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines.registry import eyeriss_like, nvdla_like
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.cosearch import (
    LayerChoice,
    ModelCost,
    compare_architectures,
    evaluate_model,
)
from repro.layoutloop.cost_model import CostReport
from repro.layoutloop.mapper import Mapper, SearchResult, _metric_value
from repro.search import (
    CacheStats,
    EvaluationCache,
    bound_statics,
    mapping_signature,
    metric_lower_bound,
    resolve_workers,
    workload_signature,
)
from repro.search.engine import SearchEngine, search_model, search_models
from repro.search.parallel import WORKERS_ENV_VAR, chunked, default_chunk_size
from repro.workloads.bert import bert_unique_gemms
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec
from repro.workloads.resnet50 import resnet50_layers

LAYER = ConvLayerSpec("layer", m=64, c=64, h=14, w=14, r=3, s=3, stride=1, padding=1)
RENAMED = ConvLayerSpec("other_name", m=64, c=64, h=14, w=14, r=3, s=3, stride=1,
                        padding=1)
SMALL = ConvLayerSpec("small", m=16, c=8, h=8, w=8, r=3, s=3, padding=1)
GEMM = GemmSpec("gemm", m=64, k=128, n=96)


class TestSignatures:
    def test_names_do_not_matter(self):
        assert workload_signature(LAYER) == workload_signature(RENAMED)

    def test_shapes_do_matter(self):
        assert workload_signature(LAYER) != workload_signature(SMALL)
        assert workload_signature(LAYER) != workload_signature(GEMM)

    def test_mapping_signature_ignores_name(self):
        mapper = Mapper(nvdla_like())
        mapping = mapper.candidate_mappings(LAYER)[0]
        renamed = type(mapping)(name="renamed", array_rows=mapping.array_rows,
                                array_cols=mapping.array_cols,
                                parallel=mapping.parallel, tile=mapping.tile,
                                order=mapping.order,
                                reduction_dims=mapping.reduction_dims)
        assert mapping_signature(mapping) == mapping_signature(renamed)


class TestEvaluationCache:
    def test_hit_miss_accounting(self):
        mapper = Mapper(feather_arch(), max_mappings=20)
        first = mapper.search(LAYER)
        assert first.cache_hits == 0
        assert mapper.evaluation_cache.stats.misses == first.evaluated
        # Same shape under a different name misses the result-level cache
        # but hits the evaluation cache for every scored candidate.
        second = mapper.search(RENAMED)
        assert second.cache_hits == second.evaluated
        assert mapper.evaluation_cache.stats.hits == second.evaluated
        assert second.best_value == first.best_value

    def test_lookups_equal_scored_candidates(self):
        cost = search_model(feather_arch(), [LAYER, SMALL], max_mappings=20)
        stats = cost.search_stats
        assert stats.cache.lookups == stats.evaluations

    def test_stats_merge_and_rate(self):
        merged = CacheStats(hits=3, misses=1).merge(CacheStats(hits=1, misses=3))
        assert merged.hits == 4 and merged.misses == 4
        assert merged.hit_rate == pytest.approx(0.5)
        assert CacheStats().hit_rate == 0.0

    def test_clear(self):
        cache = EvaluationCache()
        mapper = Mapper(feather_arch(), max_mappings=10, evaluation_cache=cache)
        mapper.search(SMALL)
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_cache_hit_reports_carry_current_labels(self):
        # Keys exclude names, so a hit may come from another layer's search;
        # the returned report must still be labelled for the current call.
        mapper = Mapper(feather_arch(), max_mappings=15)
        mapper.search(LAYER)
        second = mapper.search(RENAMED)
        assert second.cache_hits > 0
        assert second.best_report.workload == "other_name"

    def test_shared_cache_across_engine_batches(self):
        cache = EvaluationCache()
        engine = SearchEngine(feather_arch(), max_mappings=15, cache=cache)
        engine.search_model([LAYER], model_name="a")
        second = engine.search_model([RENAMED], model_name="b")
        assert second.search_stats.cache.hits > 0

    def test_batch_results_adopted_into_engine(self):
        # After a batch (even a parallel one, whose workers cannot share the
        # in-process cache), per-shape results land in the engine's result
        # cache so follow-up per-layer searches are free.
        engine = SearchEngine(feather_arch(), max_mappings=10)
        batch = engine.search_model([LAYER, SMALL], workers=2, chunk_size=1)
        followup = engine.search_layer(LAYER)
        assert followup is batch.layer_choices[0].result


class TestBounds:
    @pytest.mark.parametrize("metric", ["edp", "latency", "energy"])
    @pytest.mark.parametrize("arch_fn", [feather_arch, nvdla_like, eyeriss_like])
    def test_bound_is_admissible(self, metric, arch_fn):
        """The lower bound never exceeds the true metric value."""
        arch = arch_fn()
        mapper = Mapper(arch, metric=metric, max_mappings=12)
        statics = bound_statics(mapper.cost_model, LAYER)
        for mapping in mapper.candidate_mappings(LAYER):
            bound = metric_lower_bound(metric, mapping.compute_cycles(LAYER),
                                       statics)
            for layout in mapper.candidate_layouts(LAYER):
                report = mapper.cost_model.evaluate(LAYER, mapping, layout)
                assert bound <= _metric_value(report, metric) * (1 + 1e-12)

    def test_unknown_metric_rejected(self):
        statics = bound_statics(Mapper(feather_arch()).cost_model, SMALL)
        with pytest.raises(ValueError):
            metric_lower_bound("speed", 1.0, statics)


class TestPruning:
    @pytest.mark.parametrize("metric", ["edp", "latency", "energy"])
    def test_pruned_matches_exhaustive(self, metric):
        for workload in (LAYER, SMALL, GEMM):
            pruned = Mapper(feather_arch(), metric=metric,
                            max_mappings=25).search(workload)
            full = Mapper(feather_arch(), metric=metric, max_mappings=25,
                          prune=False).search(workload)
            assert pruned.best_value == full.best_value
            assert pruned.best_mapping == full.best_mapping
            assert pruned.best_layout.name == full.best_layout.name
            assert pruned.evaluated + pruned.pruned == full.evaluated

    def test_pruning_actually_prunes(self):
        result = Mapper(feather_arch(), max_mappings=40).search(LAYER)
        assert result.pruned > 0

    @settings(max_examples=12, deadline=None)
    @given(m=st.integers(1, 48), c=st.integers(1, 48),
           h=st.integers(3, 20), w=st.integers(3, 20),
           r=st.integers(1, 3), s=st.integers(1, 3),
           stride=st.integers(1, 2), padding=st.integers(0, 1))
    def test_pruning_never_drops_the_optimum(self, m, c, h, w, r, s, stride,
                                             padding):
        """Property: for random conv shapes the pruned best == exhaustive best."""
        assume(h + 2 * padding >= r and w + 2 * padding >= s)
        layer = ConvLayerSpec("prop", m=m, c=c, h=h, w=w, r=r, s=s,
                              stride=stride, padding=padding)
        pruned = Mapper(feather_arch(8, 8), max_mappings=10).search(layer)
        full = Mapper(feather_arch(8, 8), max_mappings=10,
                      prune=False).search(layer)
        assert pruned.best_value == full.best_value
        assert pruned.best_mapping == full.best_mapping
        assert pruned.best_layout.name == full.best_layout.name


class TestParallelDeterminism:
    def _assert_identical(self, serial: ModelCost, parallel: ModelCost):
        assert parallel.total_cycles == serial.total_cycles
        assert parallel.total_energy_pj == serial.total_energy_pj
        assert parallel.total_macs == serial.total_macs
        assert len(parallel.layer_choices) == len(serial.layer_choices)
        for ps, ss in zip(parallel.layer_choices, serial.layer_choices):
            assert ps.count == ss.count
            assert ps.result.best_mapping == ss.result.best_mapping
            assert ps.result.best_layout.name == ss.result.best_layout.name
            assert ps.result.best_report == ss.result.best_report

    def test_resnet50_parallel_bit_identical(self):
        layers = resnet50_layers(include_fc=False)[:14]
        serial = search_model(feather_arch(), layers, model_name="rn50",
                              max_mappings=10, workers=1)
        parallel = search_model(feather_arch(), layers, model_name="rn50",
                                max_mappings=10, workers=2)
        self._assert_identical(serial, parallel)
        assert parallel.search_stats.workers == 2
        assert serial.search_stats.workers == 1

    def test_bert_parallel_bit_identical(self):
        gemms = bert_unique_gemms()
        serial = search_model(feather_arch(), gemms, model_name="bert",
                              max_mappings=8, workers=1)
        parallel = search_model(feather_arch(), gemms, model_name="bert",
                                max_mappings=8, workers=3, chunk_size=2)
        self._assert_identical(serial, parallel)

    def test_search_models_multi_arch(self):
        costs = search_models([nvdla_like(), feather_arch()], [LAYER, SMALL],
                              model_name="toy", max_mappings=10)
        assert set(costs) == {"NVDLA-like", "FEATHER"}
        for cost in costs.values():
            assert cost.search_stats is not None
            assert cost.search_stats.evaluations > 0


class TestSearchModelAPI:
    def test_dedup_accounting(self):
        cost = search_model(feather_arch(), [LAYER, RENAMED, SMALL, LAYER],
                            max_mappings=10)
        stats = cost.search_stats
        assert stats.layers_total == 4
        assert stats.layers_unique == 2
        assert cost.total_macs == 3 * LAYER.macs + SMALL.macs

    def test_matches_legacy_evaluate_model(self):
        layers = [LAYER, SMALL]
        legacy = evaluate_model(feather_arch(), layers,
                                mapper=Mapper(feather_arch(), max_mappings=10))
        engine = search_model(feather_arch(), layers, max_mappings=10)
        assert engine.total_cycles == legacy.total_cycles
        assert engine.total_energy_pj == legacy.total_energy_pj

    def test_empty_model_raises(self):
        with pytest.raises(ValueError):
            search_model(feather_arch(), [])
        with pytest.raises(ValueError):
            evaluate_model(feather_arch(), [])
        with pytest.raises(ValueError):
            compare_architectures([feather_arch()], [])

    def test_stats_str_mentions_model(self):
        cost = search_model(feather_arch(), [SMALL], model_name="tiny",
                            max_mappings=8)
        assert "tiny" in str(cost.search_stats)

    def test_workers_env_var(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2
        monkeypatch.setenv(WORKERS_ENV_VAR, "zebra")
        with pytest.raises(ValueError):
            resolve_workers(None)
        monkeypatch.delenv(WORKERS_ENV_VAR)
        assert resolve_workers(None) == 1

    def test_chunking_helpers(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            chunked([1], 0)
        assert default_chunk_size(20, 2) == 2
        assert default_chunk_size(3, 8) == 1

    def test_run_fanout_reports_effective_workers(self):
        from repro.search.parallel import run_fanout

        # Serial paths (workers=1, or a single payload) must report 1, not
        # the requested count — SearchStats.workers shows what actually ran.
        results, effective = run_fanout(lambda x: x * 2, [1, 2, 3], workers=1)
        assert results == [2, 4, 6] and effective == 1
        results, effective = run_fanout(lambda x: x + 1, [5], workers=4)
        assert results == [6] and effective == 1


class TestEdgeCases:
    def _zero_mac_report(self, energy_pj: float) -> CostReport:
        return CostReport(workload="degenerate", arch="a", mapping="m",
                          layout="l", macs=0, compute_cycles=0.0, slowdown=1.0,
                          stall_cycles=0.0, reorder_cycles_exposed=0.0,
                          total_cycles=0.0, utilization=0.25,
                          practical_utilization=0.25,
                          energy_breakdown_pj={"dram": energy_pj})

    def test_zero_mac_report_energy_per_mac(self):
        assert self._zero_mac_report(10.0).energy_per_mac_pj == math.inf
        assert self._zero_mac_report(0.0).energy_per_mac_pj == 0.0

    def _zero_mac_model(self, energy_pj: float) -> ModelCost:
        report = self._zero_mac_report(energy_pj)
        result = SearchResult(workload="degenerate", arch="a",
                              best_report=report, best_mapping=None,
                              best_layout=None, evaluated=1, metric="edp")
        return ModelCost(arch="a", model="degenerate",
                         layer_choices=[LayerChoice(result=result, count=1)])

    def test_zero_mac_model_cost(self):
        assert self._zero_mac_model(10.0).energy_per_mac_pj == math.inf
        assert self._zero_mac_model(0.0).energy_per_mac_pj == 0.0

    def test_zero_mac_avg_utilization_falls_back_to_mean(self):
        # A zero-MAC model must not silently report 0% utilization.
        assert self._zero_mac_model(1.0).avg_utilization == pytest.approx(0.25)

    def test_empty_model_cost_properties(self):
        empty = ModelCost(arch="a", model="empty")
        assert empty.avg_utilization == 0.0
        assert empty.energy_per_mac_pj == 0.0
