"""Budgeted search policies: exactness, determinism and budget compliance.

The contract under test (:mod:`repro.search.budget`):

* **halving is exact at full budget** — on every golden micro-cell's
  (workload set, arch, config), over every backend the cell can run
  analytically or on the simulator, uncapped ``halving_search`` returns
  exactly the exhaustive winner (value, mapping *and* layout: the winner is
  the lexicographic minimum of ``(value, mapping index, layout index)``,
  so tie-breaks must survive the bound-ordered visit).
* **budget compliance** — for any ``budget >= len(layouts)`` both policies
  score at most ``budget`` (mapping, layout) pairs.
* **evolutionary determinism** — same (mapper seed, memo state, budget)
  means the same result object, field for field.
* **warm start** — once any search of a shape is memoized, evolutionary
  refinement finds the exhaustive winner with a budget of two mappings.
* **cached bound statics** — :func:`repro.search.bounds.cached_bound_statics`
  is the same object contentwise as a fresh :func:`bound_statics`.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.simulator import SimulatorBackend
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.mapper import Mapper
from repro.scenarios.builtin import golden_matrix
from repro.scenarios.registry import resolve_arch, resolve_workload_set
from repro.search.bounds import bound_statics, cached_bound_statics
from repro.search.budget import (
    POLICIES,
    default_budget,
    evolutionary_search,
    halving_search,
)
from repro.search.signatures import workload_signature
from repro.workloads.resnet50 import resnet50_layers

GOLDEN_CELLS = list(golden_matrix())


def _unique(workloads):
    seen = {}
    for workload in workloads:
        seen.setdefault(workload_signature(workload), workload)
    return list(seen.values())


def _mapper_for_cell(cell):
    """An exhaustive mapper on the cell's (arch, config) — analytical for
    analytical/crossval cells, simulator-backed for simulator cells."""
    arch = resolve_arch(cell.arch)
    if cell.backend == "simulator":
        backend = SimulatorBackend(arch, seed=cell.config.seed)
    else:
        backend = "analytical"
    return Mapper(arch, metric=cell.config.metric,
                  max_mappings=cell.config.max_mappings,
                  seed=cell.config.seed, prune=cell.config.prune,
                  backend=backend)


def _same_result(a, b) -> None:
    assert a.best_mapping.name == b.best_mapping.name
    assert a.best_layout.name == b.best_layout.name
    assert a.best_report.total_cycles == b.best_report.total_cycles
    assert a.best_report.total_energy_pj == b.best_report.total_energy_pj


@pytest.mark.parametrize("cell", GOLDEN_CELLS, ids=lambda c: c.name)
def test_full_budget_halving_matches_exhaustive(cell):
    exhaustive = _mapper_for_cell(cell)
    halving = _mapper_for_cell(cell)
    for workload in _unique(resolve_workload_set(cell.workload_set)):
        reference = exhaustive.search(workload)
        result = halving_search(halving, workload)
        _same_result(result, reference)


def test_policies_tuple_is_the_public_contract():
    assert POLICIES == ("exhaustive", "halving", "evolutionary")
    with pytest.raises(ValueError, match="policy"):
        Mapper(feather_arch(), policy="anneal")
    with pytest.raises(ValueError, match="budget"):
        Mapper(feather_arch(), policy="halving", budget=0)
    with pytest.raises(ValueError, match="budget requires"):
        Mapper(feather_arch(), budget=10)


def test_mapper_policy_dispatch_matches_direct_call():
    workload = resnet50_layers(include_fc=False)[0]
    exhaustive = Mapper(feather_arch(), max_mappings=12, seed=0)
    budgeted = Mapper(feather_arch(), max_mappings=12, seed=0,
                      policy="halving")
    _same_result(budgeted.search(workload), exhaustive.search(workload))
    assert budgeted.search(workload) is budgeted.search(workload)  # memoized


@settings(max_examples=12, deadline=None)
@given(budget_mappings=st.integers(min_value=1, max_value=24),
       policy=st.sampled_from(("halving", "evolutionary")))
def test_evaluated_never_exceeds_budget(budget_mappings, policy):
    workload = resnet50_layers(include_fc=False)[0]
    mapper = Mapper(feather_arch(), max_mappings=24, seed=0)
    layouts = mapper.candidate_layouts(workload)
    budget = budget_mappings * len(layouts)
    search = halving_search if policy == "halving" else evolutionary_search
    result = search(mapper, workload, budget=budget)
    assert 0 < result.evaluated <= budget


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       budget_mappings=st.integers(min_value=1, max_value=12))
def test_evolutionary_is_seed_deterministic(seed, budget_mappings):
    workload = resnet50_layers(include_fc=False)[0]

    def run():
        mapper = Mapper(feather_arch(), max_mappings=24, seed=seed)
        budget = budget_mappings * len(mapper.candidate_layouts(workload))
        return evolutionary_search(mapper, workload, budget=budget)

    first, second = run(), run()
    _same_result(first, second)
    assert first.evaluated == second.evaluated
    assert first.cache_hits == second.cache_hits


def test_warm_started_evolutionary_reaches_exhaustive_winner():
    arch = feather_arch()
    exhaustive = Mapper(arch, max_mappings=24, seed=0)
    warm = Mapper(arch, max_mappings=24, seed=0)
    for workload in _unique(resnet50_layers(include_fc=False)):
        reference = exhaustive.search(workload)
        warm._cache.update(exhaustive._cache)
        budget = 2 * len(warm.candidate_layouts(workload))
        result = evolutionary_search(warm, workload, budget=budget)
        _same_result(result, reference)
        assert result.evaluated <= budget


def test_uncapped_evolutionary_covers_the_universe():
    # budget >= universe size: every candidate is scored, so the winner is
    # exactly the exhaustive one even with an empty warm-start memo.
    workload = resnet50_layers(include_fc=False)[0]
    mapper = Mapper(feather_arch(), max_mappings=12, seed=0)
    universe = (len(mapper.candidate_mappings(workload))
                * len(mapper.candidate_layouts(workload)))
    result = evolutionary_search(mapper, workload, budget=universe)
    reference = Mapper(feather_arch(), max_mappings=12, seed=0).search(
        workload)
    _same_result(result, reference)


def test_budget_none_is_uncapped_for_both_policies():
    # ``budget=None`` means uncapped for halving AND evolutionary (the
    # latter used to silently default to a quarter-universe refinement
    # cap) — both must return exactly the exhaustive winner.
    workload = resnet50_layers(include_fc=False)[0]
    reference = Mapper(feather_arch(), max_mappings=12, seed=0).search(
        workload)
    for search in (halving_search, evolutionary_search):
        mapper = Mapper(feather_arch(), max_mappings=12, seed=0)
        _same_result(search(mapper, workload, budget=None), reference)
    # Uncapped evolutionary scores the whole universe (no hidden cap left).
    mapper = Mapper(feather_arch(), max_mappings=12, seed=0)
    universe = (len(mapper.candidate_mappings(workload))
                * len(mapper.candidate_layouts(workload)))
    assert evolutionary_search(mapper, workload).evaluated == universe


def test_default_budget_is_the_legacy_quarter_universe():
    assert default_budget(24, 7) == (24 * 7) // 4
    assert default_budget(1, 7) == 7  # floor: one mapping's worth of pairs
    assert default_budget(0, 0) == 1  # degenerate inputs stay a valid budget
    # Passed explicitly, it caps the search like any other budget.
    workload = resnet50_layers(include_fc=False)[0]
    mapper = Mapper(feather_arch(), max_mappings=24, seed=0)
    budget = default_budget(len(mapper.candidate_mappings(workload)),
                            len(mapper.candidate_layouts(workload)))
    result = evolutionary_search(mapper, workload, budget=budget)
    assert 0 < result.evaluated <= budget


def test_cached_bound_statics_matches_oracle():
    from repro.layoutloop.cost_model import CostModel

    model = CostModel(feather_arch())
    for workload in resnet50_layers(include_fc=False)[:3]:
        cached = cached_bound_statics(model, workload)
        fresh = bound_statics(model, workload)
        assert cached == fresh
        # Same signature -> same cached object (the whole point).
        assert cached_bound_statics(model, workload) is cached
        assert cached_bound_statics(CostModel(feather_arch()),
                                    workload) is cached


def test_halving_reports_admissible_prunes():
    workload = resnet50_layers(include_fc=False)[0]
    mapper = Mapper(feather_arch(), max_mappings=24, seed=0)
    result = halving_search(mapper, workload)
    reference = Mapper(feather_arch(), max_mappings=24, seed=0).search(
        workload)
    # Conservation: every (mapping, layout) pair is either scored or pruned.
    universe = (len(mapper.candidate_mappings(workload))
                * len(mapper.candidate_layouts(workload)))
    assert result.evaluated + result.pruned == universe
    assert result.evaluated <= reference.evaluated
    assert math.isfinite(result.best_report.total_cycles)
