"""Functional and timing tests for the FEATHER accelerator top level."""

import numpy as np
import pytest

from repro.feather.accelerator import FeatherAccelerator, im2col, reference_conv
from repro.feather.config import FeatherConfig
from repro.feather.quantize import QuantizationModule
from repro.layout.layout import parse_layout
from repro.workloads.conv import ConvLayerSpec


def _random_gemm(rng, m, k, n):
    return (rng.integers(-5, 6, (m, k)), rng.integers(-5, 6, (k, n)))


class TestRunGemm:
    def test_matches_numpy(self, rng, small_feather_config):
        weights, iacts = _random_gemm(rng, 12, 16, 9)
        acc = FeatherAccelerator(small_feather_config)
        out, stats = acc.run_gemm(weights, iacts)
        assert np.array_equal(out, weights @ iacts)
        assert stats.macs == 12 * 16 * 9

    def test_matches_numpy_tall_gemm(self, rng, small_feather_config):
        weights, iacts = _random_gemm(rng, 40, 8, 6)
        acc = FeatherAccelerator(small_feather_config)
        out, stats = acc.run_gemm(weights, iacts)
        assert np.array_equal(out, weights @ iacts)

    def test_matches_numpy_small_k(self, rng, small_feather_config):
        weights, iacts = _random_gemm(rng, 6, 2, 7)
        acc = FeatherAccelerator(small_feather_config)
        out, _ = acc.run_gemm(weights, iacts)
        assert np.array_equal(out, weights @ iacts)

    def test_birrd_routed_on_small_arrays(self, rng, small_feather_config):
        weights, iacts = _random_gemm(rng, 8, 16, 4)
        acc = FeatherAccelerator(small_feather_config, route_birrd="auto")
        _, stats = acc.run_gemm(weights, iacts)
        assert stats.birrd_cycles > 0
        assert stats.routed_fraction == 1.0

    def test_route_never_mode(self, rng, small_feather_config):
        weights, iacts = _random_gemm(rng, 8, 16, 4)
        acc = FeatherAccelerator(small_feather_config, route_birrd="never")
        out, stats = acc.run_gemm(weights, iacts)
        assert np.array_equal(out, weights @ iacts)
        assert stats.birrd_routed_cycles == 0

    def test_invalid_route_mode(self, small_feather_config):
        with pytest.raises(ValueError):
            FeatherAccelerator(small_feather_config, route_birrd="sometimes")

    def test_stats_utilization_bounded(self, rng, small_feather_config):
        weights, iacts = _random_gemm(rng, 16, 32, 20)
        acc = FeatherAccelerator(small_feather_config)
        _, stats = acc.run_gemm(weights, iacts)
        assert 0 < stats.utilization <= 1.0

    def test_quantizer_applied_to_stab_writes(self, rng, small_feather_config):
        weights, iacts = _random_gemm(rng, 4, 8, 4)
        acc = FeatherAccelerator(small_feather_config)
        qm = QuantizationModule(scale=0.01, zero_point=0)
        out, _ = acc.run_gemm(weights, iacts, quantizer=qm)
        # The returned accumulator values are unquantized; QM only affects StaB.
        assert np.array_equal(out, weights @ iacts)
        assert qm.values_quantized > 0

    def test_dimension_mismatch_raises(self, rng, small_feather_config):
        acc = FeatherAccelerator(small_feather_config)
        with pytest.raises(ValueError):
            acc.run_gemm(np.ones((4, 5)), np.ones((6, 3)))

    def test_stats_merge(self, rng, small_feather_config):
        weights, iacts = _random_gemm(rng, 8, 8, 4)
        acc = FeatherAccelerator(small_feather_config)
        _, s1 = acc.run_gemm(weights, iacts)
        _, s2 = acc.run_gemm(weights, iacts)
        merged = s1.merge(s2)
        assert merged.macs == s1.macs + s2.macs
        assert merged.cycles == s1.cycles + s2.cycles


class TestRunConv:
    def test_matches_reference(self, rng, small_feather_config, small_conv_layer):
        layer = small_conv_layer
        iacts = rng.integers(-5, 6, (layer.c, layer.h, layer.w))
        weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))
        acc = FeatherAccelerator(small_feather_config)
        out, _ = acc.run_conv(layer, iacts, weights)
        assert np.array_equal(out, reference_conv(iacts, weights, layer))

    def test_strided_conv(self, rng, small_feather_config, strided_conv_layer):
        layer = strided_conv_layer
        iacts = rng.integers(-5, 6, (layer.c, layer.h, layer.w))
        weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))
        acc = FeatherAccelerator(small_feather_config)
        out, _ = acc.run_conv(layer, iacts, weights)
        assert np.array_equal(out, reference_conv(iacts, weights, layer))

    def test_shape_validation(self, rng, small_feather_config, small_conv_layer):
        acc = FeatherAccelerator(small_feather_config)
        with pytest.raises(ValueError):
            acc.run_conv(small_conv_layer, np.ones((1, 2, 3)), np.ones((1, 1, 1, 1)))

    def test_rir_layout_switch_conflict_free(self, rng, tiny_feather_config):
        """The Fig. 11 property: channel-last in, row-major out, no conflicts."""
        layer = ConvLayerSpec("rir", m=4, c=4, h=4, w=4, r=2, s=2)
        iacts = rng.integers(-4, 5, (layer.c, layer.h, layer.w))
        weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))
        acc = FeatherAccelerator(tiny_feather_config)
        out, stats = acc.run_conv(
            layer, iacts, weights,
            output_layout=parse_layout("MPQ_Q4"),
            input_layout=parse_layout("HWC_C4"))
        assert np.array_equal(out, reference_conv(iacts, weights, layer))
        assert stats.read_slowdown == pytest.approx(1.0)
        assert stats.write_serialization == pytest.approx(1.0)

    def test_discordant_input_layout_reports_slowdown(self, rng, tiny_feather_config):
        """Row-major iActs with a channel-parallel read pattern stalls (Fig. 4)."""
        layer = ConvLayerSpec("discordant", m=4, c=16, h=4, w=8, r=1, s=1)
        iacts = rng.integers(-4, 5, (layer.c, layer.h, layer.w))
        weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))
        acc = FeatherAccelerator(tiny_feather_config)
        out, stats = acc.run_conv(
            layer, iacts, weights, input_layout=parse_layout("HCW_W8"))
        assert np.array_equal(out, reference_conv(iacts, weights, layer))
        assert stats.read_slowdown > 1.0

    def test_oacts_written_to_stab(self, rng, tiny_feather_config):
        layer = ConvLayerSpec("stab", m=4, c=2, h=4, w=4, r=2, s=2)
        iacts = rng.integers(-4, 5, (layer.c, layer.h, layer.w))
        weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))
        acc = FeatherAccelerator(tiny_feather_config)
        _, stats = acc.run_conv(layer, iacts, weights)
        assert stats.stab_writes == layer.oact_elems
        assert acc.stab_pong.total_writes == layer.oact_elems


class TestIm2col:
    def test_shape(self, small_conv_layer):
        layer = small_conv_layer
        iacts = np.arange(layer.c * layer.h * layer.w).reshape(layer.c, layer.h, layer.w)
        cols = im2col(iacts, layer)
        assert cols.shape == (layer.c * layer.r * layer.s, layer.p * layer.q)

    def test_no_padding_case(self):
        layer = ConvLayerSpec("np", m=1, c=1, h=3, w=3, r=2, s=2)
        iacts = np.arange(9).reshape(1, 3, 3)
        cols = im2col(iacts, layer)
        # First output position covers the top-left 2x2 patch.
        assert list(cols[:, 0]) == [0, 1, 3, 4]

    def test_padding_introduces_zeros(self):
        layer = ConvLayerSpec("pad", m=1, c=1, h=3, w=3, r=3, s=3, padding=1)
        iacts = np.ones((1, 3, 3), dtype=int)
        cols = im2col(iacts, layer)
        # The corner output position reads 4 padded zeros.
        assert (cols[:, 0] == 0).sum() == 5

    def test_reference_conv_identity_kernel(self):
        layer = ConvLayerSpec("id", m=1, c=1, h=4, w=4, r=1, s=1)
        iacts = np.arange(16).reshape(1, 4, 4)
        weights = np.ones((1, 1, 1, 1), dtype=int)
        out = reference_conv(iacts, weights, layer)
        assert np.array_equal(out[0], iacts[0])
