"""The disk-backed :class:`repro.store.ResultStore` tier.

Property tests (hypothesis) over the store's cache contract:

* **Round trip** — any JSON-compatible payload put under a content key
  comes back equal, across reopen and across instances sharing the file.
* **Bounds** — after any sequence of puts the summed payload sizes never
  exceed ``max_bytes`` (and the entry count never exceeds
  ``max_entries``), with the *most recently used* entries surviving.
* **Corruption is a miss, never a crash** — a corrupted entry row is
  deleted-and-missed; a truncated/garbage store *file* is recreated
  empty; follow-up puts work again.

Plus the integration contract the service fleet depends on: two
:class:`~repro.api.Session` objects sharing one store file see each
other's results (``served_from == "store"``, zero executions on the
second session).
"""

import json
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SearchRequest, Session, content_key
from repro.store import ResultStore

# Content-key-shaped strings (the store never parses them, but stay real).
_keys = st.text(st.sampled_from("0123456789abcdef"), min_size=8, max_size=8)

_payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(-2**31, 2**31), st.floats(allow_nan=False),
              st.text(max_size=16), st.booleans(), st.none()),
    max_size=6)


def _size(payload) -> int:
    return len(json.dumps(payload, sort_keys=True).encode("utf-8"))


# ------------------------------------------------------------ round trips
@settings(max_examples=30, deadline=None)
@given(entries=st.dictionaries(_keys, _payloads, max_size=8))
def test_put_get_round_trip(tmp_path_factory, entries):
    path = tmp_path_factory.mktemp("store") / "s.sqlite"
    with ResultStore(path) as store:
        for key, payload in entries.items():
            store.put(key, payload, kind="test")
        for key, payload in entries.items():
            assert store.get(key) == payload
        assert len(store) == len(entries)
    # Reopen: the results persisted.
    with ResultStore(path) as reopened:
        for key, payload in entries.items():
            assert reopened.get(key) == payload


def test_get_is_a_miss_for_absent_keys(tmp_path):
    store = ResultStore(tmp_path / "s.sqlite")
    assert store.get("deadbeef") is None
    assert store.stats.misses == 1 and store.stats.hits == 0


def test_last_write_wins(tmp_path):
    store = ResultStore(tmp_path / "s.sqlite")
    store.put("k", {"v": 1})
    store.put("k", {"v": 2})
    assert store.get("k") == {"v": 2}
    assert len(store) == 1


def test_two_instances_share_one_file_interleaved(tmp_path):
    """Two connections (two 'processes' as far as sqlite locking goes)
    writing and reading the same file see each other's entries."""
    path = tmp_path / "s.sqlite"
    a, b = ResultStore(path), ResultStore(path)
    a.put("from-a", {"who": "a"})
    assert b.get("from-a") == {"who": "a"}
    b.put("from-b", {"who": "b"})
    assert a.get("from-b") == {"who": "b"}
    b.put("from-a", {"who": "b-overwrote"})
    assert a.get("from-a") == {"who": "b-overwrote"}
    a.close(), b.close()


# --------------------------------------------------------------- put_many
@settings(max_examples=30, deadline=None)
@given(entries=st.dictionaries(_keys, _payloads, max_size=8))
def test_put_many_matches_sequential_puts(tmp_path_factory, entries):
    """One batched transaction is observably the same as N puts."""
    base = tmp_path_factory.mktemp("store")
    items = [(key, payload, "test") for key, payload in entries.items()]
    with ResultStore(base / "batch.sqlite") as batched, \
            ResultStore(base / "serial.sqlite") as serial:
        batched.put_many(items)
        for key, payload, kind in items:
            serial.put(key, payload, kind=kind)
        assert batched.stats.puts == serial.stats.puts == len(items)
        assert len(batched) == len(serial) == len(entries)
        for key, payload in entries.items():
            assert batched.get(key) == serial.get(key) == payload


def test_put_many_last_write_wins_within_the_batch(tmp_path):
    store = ResultStore(tmp_path / "s.sqlite")
    store.put_many([("k", {"v": 1}, ""), ("k", {"v": 2}, "")])
    assert store.get("k") == {"v": 2}
    assert len(store) == 1


def test_put_many_evicts_inside_the_same_transaction(tmp_path):
    """The batch that overflows the bound leaves the store under it —
    eviction runs before the transaction commits, never as a follow-up."""
    payload = {"pad": "x" * 100}
    bound = 3 * _size(payload)
    store = ResultStore(tmp_path / "s.sqlite", max_bytes=bound)
    store.put_many([(name, payload, "") for name in "abcde"])
    assert store.total_bytes() <= bound
    assert store.keys() == ["c", "d", "e"]  # batch order is the LRU order
    assert store.stats.evictions == 2


def test_put_many_skips_oversize_payloads(tmp_path):
    store = ResultStore(tmp_path / "s.sqlite", max_bytes=200)
    store.put_many([("big", {"pad": "x" * 500}, ""), ("ok", {"v": 1}, "")])
    assert store.get("big") is None
    assert store.get("ok") == {"v": 1}
    assert store.stats.puts == 1


# ----------------------------------------------------------------- bounds
@settings(max_examples=30, deadline=None)
@given(payloads=st.lists(_payloads, min_size=1, max_size=12),
       budget_entries=st.integers(1, 4))
def test_lru_never_exceeds_the_size_bound(tmp_path_factory, payloads,
                                          budget_entries):
    """Invariant after *every* put: total stored bytes <= max_bytes."""
    path = tmp_path_factory.mktemp("store") / "s.sqlite"
    max_bytes = max(_size(p) for p in payloads) * budget_entries
    store = ResultStore(path, max_bytes=max_bytes)
    for i, payload in enumerate(payloads):
        store.put(f"key-{i}", payload)
        assert store.total_bytes() <= max_bytes
    store.close()


def test_lru_evicts_least_recently_used_first(tmp_path):
    payload = {"pad": "x" * 100}
    bound = 3 * _size(payload)
    store = ResultStore(tmp_path / "s.sqlite", max_bytes=bound)
    for name in ("a", "b", "c"):
        store.put(name, payload)
    assert store.get("a") is not None  # touch: a is now most recent
    store.put("d", payload)            # overflows: evicts b, the LRU
    assert store.keys() == ["c", "a", "d"]
    assert store.get("b") is None
    assert store.stats.evictions == 1


def test_max_entries_bound(tmp_path):
    store = ResultStore(tmp_path / "s.sqlite", max_entries=2)
    for i in range(5):
        store.put(f"k{i}", {"i": i})
        assert len(store) <= 2
    assert store.keys() == ["k3", "k4"]


def test_oversized_payload_is_not_stored(tmp_path):
    """A payload bigger than the whole bound would evict everything else
    and then itself; it is simply skipped."""
    store = ResultStore(tmp_path / "s.sqlite", max_bytes=64)
    store.put("small", {"v": 1})
    store.put("huge", {"pad": "x" * 1000})
    assert store.get("huge") is None
    assert store.get("small") == {"v": 1}


# ------------------------------------------------------------- corruption
def test_corrupt_entry_is_a_miss_and_self_heals(tmp_path):
    path = tmp_path / "s.sqlite"
    store = ResultStore(path)
    store.put("good", {"v": 1})
    store.put("bad", {"v": 2})
    # Corrupt one row's payload behind the store's back.
    raw = sqlite3.connect(str(path))
    raw.execute("UPDATE results SET payload = '{truncated' WHERE key = 'bad'")
    raw.commit(), raw.close()
    assert store.get("bad") is None            # miss, not a crash
    assert store.get("good") == {"v": 1}       # neighbors unharmed
    store.put("bad", {"v": 3})                 # heals
    assert store.get("bad") == {"v": 3}


@pytest.mark.parametrize("garbage", [b"", b"not a sqlite file at all",
                                     b"\x00" * 256],
                         ids=["empty", "text", "zeros"])
def test_truncated_store_file_recovers_empty(tmp_path, garbage):
    path = tmp_path / "s.sqlite"
    store = ResultStore(path)
    store.put("k", {"v": 1})
    store.close()
    for suffix in ("-wal", "-shm"):
        wal = tmp_path / f"s.sqlite{suffix}"
        if wal.exists():
            wal.unlink()
    path.write_bytes(garbage)
    reopened = ResultStore(path)               # does not raise
    assert reopened.get("k") is None           # contents are gone, that's ok
    reopened.put("k", {"v": 2})                # and it works again
    assert reopened.get("k") == {"v": 2}
    reopened.close()


def test_whole_file_corruption_mid_session_recovers(tmp_path):
    """Corruption appearing *after* open (another process scribbled over
    the file) is also recovered on the next operation."""
    path = tmp_path / "s.sqlite"
    store = ResultStore(path)
    store.put("k", {"v": 1})
    store.close()
    for suffix in ("-wal", "-shm"):
        wal = tmp_path / f"s.sqlite{suffix}"
        if wal.exists():
            wal.unlink()
    victim = ResultStore(path)
    path.write_bytes(b"scribbled" * 100)
    # sqlite may serve some reads from its page cache; what must hold is
    # that no operation raises and the store keeps functioning.
    victim.get("k")
    victim.put("k2", {"v": 2})
    victim.get("k2")
    assert victim.stats.errors >= 0            # counters stay consistent
    victim.close()


# ------------------------------------------------- Session x Session fleet
REQ = SearchRequest(workloads="micro_gemms", arch="FEATHER-4x4",
                    model="fleet", metric="latency", max_mappings=4)


def test_two_sessions_share_results_through_one_store(tmp_path):
    path = tmp_path / "shared.sqlite"
    with Session(name="writer", store_path=path) as writer:
        first = writer.run(REQ)
        assert first.served_from is None
        assert writer.stats.executed == 1

    with Session(name="reader", store_path=path) as reader:
        second = reader.run(REQ)
        # Served from the shared store: no execution, flagged on the wire.
        assert second.served_from == "store"
        assert reader.stats.executed == 0
        assert reader.stats.store_hits == 1
        assert reader.describe()["store"]["hits"] == 1
        # The payload is the writer's, bit for bit (modulo run metadata).
        wire = lambda r: {k: v for k, v in json.loads(r.to_json()).items()
                          if k not in ("elapsed_s", "served_from")}
        assert wire(second) == wire(first)


def test_memo_warm_repeat_beats_the_store(tmp_path):
    """Within one session the in-memory whole-result memo serves repeats
    (live handles intact); the store is for *other* replicas."""
    with Session(name="solo", store_path=tmp_path / "s.sqlite") as session:
        first = session.run(REQ)
        repeat = session.run(REQ)
        assert repeat.served_from is None
        assert repeat.cost is not None          # live handle preserved
        assert repeat.totals == first.totals
        assert session.stats.store_hits == 0


def test_fresh_cache_requests_never_touch_the_store(tmp_path):
    """fresh_cache promises per-call counters and a live cost handle
    (golden records, shims); it must bypass the store both ways."""
    fresh = SearchRequest(workloads="micro_gemms", arch="FEATHER-4x4",
                          model="fleet", metric="latency", max_mappings=4,
                          fresh_cache=True)
    path = tmp_path / "s.sqlite"
    with Session(name="a", store_path=path) as a:
        a.run(REQ)                              # stores the shared variant
        response = a.run(fresh)
        assert response.served_from is None and response.cost is not None
    with Session(name="b", store_path=path) as b:
        response = b.run(fresh)
        assert response.served_from is None     # executed, not store-served
        assert b.stats.executed == 1


def test_store_content_keys_match_request_content_keys(tmp_path):
    """The store is addressed by the façade's existing content keys."""
    path = tmp_path / "s.sqlite"
    with Session(name="keys", store_path=path) as session:
        session.run(REQ)
        assert session.store.keys() == [content_key(REQ)]


@pytest.mark.parametrize("foreign", [
    {"totally": "foreign", "schema": 99},        # unknown fields
    {"model": ["not", "a", "string"]},           # wrong nesting
    ["not", "an", "object"],                     # wrong top-level type
], ids=["unknown-fields", "wrong-nesting", "not-an-object"])
def test_foreign_store_payload_is_a_miss_and_the_row_is_deleted(tmp_path,
                                                                foreign):
    """A corrupt/foreign row under a live content key must never crash the
    serving session: it is treated as a miss, the bad row is deleted, and
    the request is recomputed (and re-offered) as if the store were cold."""
    path = tmp_path / "shared.sqlite"
    with Session(name="writer", store_path=path) as writer:
        good = writer.run(REQ)
    key = content_key(REQ)
    with ResultStore(path) as raw:
        raw.put(key, foreign, kind="search")
    with Session(name="reader", store_path=path) as reader:
        response = reader.run(REQ)
        assert response.served_from is None      # recomputed, not served
        assert reader.stats.executed == 1
        assert response.totals == good.totals    # and correct
        # The bad row is gone: the fresh result was re-offered under the key.
        healed = reader.store.get(key)
        assert healed is not None and healed != foreign
        assert healed["totals"] == good.totals
