"""Tests for the BIRRD topology (Alg. 1) and the functional network simulator."""

import pytest

from repro.noc.birrd import BirrdNetwork, BirrdTopology, EggConfig, reverse_bits


class TestReverseBits:
    def test_full_reversal(self):
        assert reverse_bits(0b001, 3) == 0b100
        assert reverse_bits(0b110, 3) == 0b011

    def test_partial_reversal_preserves_high_bits(self):
        # Only the low 2 bits are reversed; bit 2 stays.
        assert reverse_bits(0b101, 2) == 0b110

    def test_zero_range_is_identity(self):
        assert reverse_bits(0b1011, 0) == 0b1011

    def test_involution(self):
        for value in range(16):
            for width in range(5):
                assert reverse_bits(reverse_bits(value, width), width) == value


class TestBirrdTopology:
    def test_stage_count_general(self):
        assert BirrdTopology(8).num_stages == 6
        assert BirrdTopology(16).num_stages == 8
        assert BirrdTopology(32).num_stages == 10

    def test_stage_count_special_cases(self):
        # Footnote 1: a 4-input BIRRD merges the middle stages (3 total);
        # a 2-input network is a single switch.
        assert BirrdTopology(4).num_stages == 3
        assert BirrdTopology(2).num_stages == 1

    def test_switches_per_stage(self):
        assert BirrdTopology(8).switches_per_stage == 4
        assert BirrdTopology(16).num_switches == 8 * 8

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BirrdTopology(6)

    def test_inter_stage_connection_is_permutation(self):
        for aw in (4, 8, 16):
            topo = BirrdTopology(aw)
            for stage in range(topo.num_stages):
                dests = [topo.inter_stage_dest(stage, p) for p in range(aw)]
                assert sorted(dests) == list(range(aw)), (
                    f"stage {stage} of AW={aw} wiring is not a permutation")

    def test_bit_range_grows_then_shrinks(self):
        topo = BirrdTopology(16)
        ranges = [topo.stage_bit_range(s) for s in range(topo.num_stages)]
        assert ranges[0] == 2
        assert max(ranges) == 4
        assert ranges[-1] == 1

    def test_connectivity_table_shape(self):
        topo = BirrdTopology(8)
        table = topo.connectivity()
        assert len(table) == topo.num_stages
        assert all(len(row) == 8 for row in table)

    def test_config_bits(self):
        topo = BirrdTopology(8)
        assert topo.config_bits_per_cycle == 2 * topo.num_switches


class TestEggConfig:
    def test_four_distinct_control_words(self):
        words = {cfg.control_bits for cfg in EggConfig}
        assert words == {0, 1, 2, 3}


class TestBirrdNetworkEvaluate:
    def test_identity_config_preserves_multiset(self):
        net = BirrdNetwork(8)
        inputs = list(range(8))
        outputs = net.evaluate(inputs, net.identity_configuration())
        assert sorted(outputs) == inputs

    def test_swap_exchanges_pair(self):
        net = BirrdNetwork(2)
        out_pass = net.evaluate([10, 20], [[EggConfig.PASS]])
        out_swap = net.evaluate([10, 20], [[EggConfig.SWAP]])
        assert sorted(out_pass) == [10, 20]
        assert sorted(out_swap) == [10, 20]
        assert out_pass != out_swap

    def test_add_left_sums(self):
        net = BirrdNetwork(2)
        out = net.evaluate([3, 4], [[EggConfig.ADD_LEFT]])
        assert 7 in out and 4 in out

    def test_add_right_sums(self):
        net = BirrdNetwork(2)
        out = net.evaluate([3, 4], [[EggConfig.ADD_RIGHT]])
        assert 7 in out and 3 in out

    def test_none_inputs_propagate(self):
        net = BirrdNetwork(4)
        outputs = net.evaluate([5, None, None, None], net.identity_configuration())
        assert outputs.count(None) == 3
        assert 5 in outputs

    def test_add_with_none_is_identity(self):
        net = BirrdNetwork(2)
        out = net.evaluate([None, 9], [[EggConfig.ADD_LEFT]])
        assert 9 in out

    def test_wrong_input_count_raises(self):
        net = BirrdNetwork(4)
        with pytest.raises(ValueError):
            net.evaluate([1, 2], net.identity_configuration())

    def test_wrong_stage_count_raises(self):
        net = BirrdNetwork(4)
        with pytest.raises(ValueError):
            net.evaluate([1, 2, 3, 4], [[EggConfig.PASS] * 2])

    def test_missing_switch_configs_default_to_pass(self):
        net = BirrdNetwork(4)
        configs = [[] for _ in range(net.topology.num_stages)]
        outputs = net.evaluate([1, 2, 3, 4], configs)
        assert sorted(outputs) == [1, 2, 3, 4]

    def test_symbolic_evaluation_tracks_indices(self):
        net = BirrdNetwork(4)
        outputs = net.evaluate_symbolic([0, 1, 2, 3], net.identity_configuration())
        union = frozenset().union(*outputs)
        assert union == frozenset({0, 1, 2, 3})

    def test_custom_add_operator(self):
        net = BirrdNetwork(2)
        out = net.evaluate(["a", "b"], [[EggConfig.ADD_LEFT]],
                           add=lambda x, y: x + y)
        assert "ab" in out

    def test_verify_helper(self):
        net = BirrdNetwork(2)
        configs = [[EggConfig.ADD_LEFT]]
        outputs = net.evaluate([3, 4], configs)
        port = outputs.index(7)
        assert net.verify([3, 4], configs, {port: 7})
        assert not net.verify([3, 4], configs, {port: 8})
