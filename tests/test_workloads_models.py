"""Tests for the ResNet-50 / MobileNet-V3 / BERT layer tables."""

import pytest

from repro.workloads.bert import bert_base_gemms, bert_unique_gemms
from repro.workloads.conv import LayerKind
from repro.workloads.mobilenet_v3 import (
    mobilenet_v3_layer,
    mobilenet_v3_layers,
    mobilenet_v3_motivation_layers,
)
from repro.workloads.resnet50 import (
    resnet50_layer,
    resnet50_layers,
    resnet50_motivation_layers,
)


class TestResNet50:
    def test_layer_count_with_projections(self):
        # 1 stem + 16 blocks x 3 convs + 4 projections + fc = 54
        assert len(resnet50_layers()) == 54

    def test_layer_count_without_fc(self):
        assert len(resnet50_layers(include_fc=False)) == 53

    def test_conv1_shape(self):
        conv1 = resnet50_layer(1)
        assert conv1.c == 3 and conv1.m == 64
        assert conv1.r == 7 and conv1.stride == 2
        assert conv1.h == 224

    def test_total_macs_close_to_published(self):
        # ResNet-50 is ~4.1 GMACs (convolutions + fc).
        total = sum(l.macs for l in resnet50_layers())
        assert 3.5e9 < total < 4.5e9

    def test_channel_progression(self):
        layers = resnet50_layers(include_fc=False)
        assert layers[0].c == 3
        assert max(l.c for l in layers) == 2048

    def test_spatial_progression_downsamples(self):
        layers = resnet50_layers(include_fc=False)
        assert layers[0].h == 224
        late = [l for l in layers if l.h == 7]
        assert late, "last stage should run on 7x7 feature maps"

    def test_layer_index_bounds(self):
        with pytest.raises(IndexError):
            resnet50_layer(0)
        with pytest.raises(IndexError):
            resnet50_layer(999)

    def test_motivation_layers_present(self):
        layers = resnet50_motivation_layers()
        assert set(layers) == {1, 14, 41, 47}
        assert layers[1].c == 3

    def test_layer47_is_late_stage(self):
        layer = resnet50_motivation_layers()[47]
        assert layer.c >= 512
        assert layer.h <= 14

    def test_fc_is_1x1(self):
        fc = resnet50_layers()[-1]
        assert fc.kind is LayerKind.FC
        assert fc.r == 1 and fc.h == 1


class TestMobileNetV3:
    def test_has_depthwise_layers(self):
        dw = [l for l in mobilenet_v3_layers() if l.kind is LayerKind.DEPTHWISE]
        assert len(dw) == 15  # one per bottleneck block

    def test_depthwise_groups(self):
        dw = [l for l in mobilenet_v3_layers() if l.kind is LayerKind.DEPTHWISE][0]
        assert dw.groups == dw.c

    def test_total_macs_close_to_published(self):
        # MobileNetV3-Large is ~0.22 GMACs; allow a generous band.
        total = sum(l.macs for l in mobilenet_v3_layers())
        assert 1.5e8 < total < 4.5e8

    def test_stem_shape(self):
        stem = mobilenet_v3_layers()[0]
        assert stem.c == 3 and stem.m == 16 and stem.stride == 2

    def test_motivation_layers(self):
        layers = mobilenet_v3_motivation_layers()
        assert set(layers) == {7, 25, 40}

    def test_layer_lookup_bounds(self):
        with pytest.raises(IndexError):
            mobilenet_v3_layer(0)

    def test_resolution_downsampling(self):
        layers = mobilenet_v3_layers(include_fc=False)
        assert layers[0].h == 224
        assert min(l.h for l in layers) == 7


class TestBert:
    def test_unique_gemms(self):
        gemms = bert_unique_gemms()
        assert len(gemms) == 6

    def test_full_model_is_12x(self):
        assert len(bert_base_gemms()) == 12 * 6

    def test_qkv_shape(self):
        qkv = bert_unique_gemms()[0]
        assert qkv.k == 768 and qkv.n == 3 * 768

    def test_ffn_shapes(self):
        names = {g.name: g for g in bert_unique_gemms()}
        assert names["bert_ffn_up"].n == 3072
        assert names["bert_ffn_down"].k == 3072

    def test_seq_len_parameter(self):
        gemms = bert_unique_gemms(seq_len=128)
        assert gemms[0].m == 128

    def test_total_macs_scale(self):
        total = sum(g.macs for g in bert_base_gemms())
        # BERT-base at seq 512 is roughly 50 GMACs (~100 GFLOPs) of GEMM work.
        assert 3e10 < total < 1e11
