"""Tests for the BIRRD router: reductions and reorderings route correctly."""

import pytest

from repro.noc.birrd import BirrdNetwork
from repro.noc.routing import (
    BirrdRouter,
    ReductionRequest,
    contiguous_reduction_requests,
)


def _check_numeric(aw, requests, result):
    """Verify a routed configuration numerically against the requested sums."""
    assert result.routed
    net = BirrdNetwork(aw)
    inputs = [(i + 1) * 10 for i in range(aw)]
    active = {i for r in requests for i in r.inputs}
    masked = [v if i in active else None for i, v in enumerate(inputs)]
    outputs = net.evaluate(masked, result.configs)
    for req in requests:
        expected = sum(inputs[i] for i in req.inputs)
        assert outputs[req.output_port] == expected


class TestValidation:
    def test_duplicate_output_port_rejected(self):
        router = BirrdRouter(4)
        with pytest.raises(ValueError):
            router.route([ReductionRequest(0, (0,)), ReductionRequest(0, (1,))])

    def test_duplicate_input_rejected(self):
        router = BirrdRouter(4)
        with pytest.raises(ValueError):
            router.route([ReductionRequest(0, (0, 1)), ReductionRequest(1, (1,))])

    def test_out_of_range_ports_rejected(self):
        router = BirrdRouter(4)
        with pytest.raises(ValueError):
            router.route([ReductionRequest(7, (0,))])
        with pytest.raises(ValueError):
            router.route([ReductionRequest(0, (9,))])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ReductionRequest(0, ())


class TestReductionRouting:
    @pytest.mark.parametrize("aw,group", [(4, 2), (4, 4), (8, 2), (8, 4), (8, 8)])
    def test_contiguous_groups_default_destinations(self, aw, group):
        router = BirrdRouter(aw)
        requests = contiguous_reduction_requests(group, aw)
        _check_numeric(aw, requests, router.route(requests))

    def test_scattered_destinations(self):
        router = BirrdRouter(8)
        requests = contiguous_reduction_requests(4, 8, destinations=[6, 1])
        _check_numeric(8, requests, router.route(requests))

    def test_uneven_groups(self):
        router = BirrdRouter(8)
        requests = [
            ReductionRequest(0, (0, 1, 2)),
            ReductionRequest(5, (3,)),
            ReductionRequest(3, (4, 5, 6, 7)),
        ]
        _check_numeric(8, requests, router.route(requests))

    def test_single_full_reduction(self):
        router = BirrdRouter(8)
        requests = [ReductionRequest(4, tuple(range(8)))]
        _check_numeric(8, requests, router.route(requests))

    def test_partial_inputs_used(self):
        router = BirrdRouter(8)
        requests = [ReductionRequest(2, (1, 5)), ReductionRequest(6, (3,))]
        _check_numeric(8, requests, router.route(requests))

    def test_aw4_fig9_style_4_to_2(self):
        # The Fig. 9 walk-through: four partial sums reduce to two outputs.
        router = BirrdRouter(4)
        requests = [ReductionRequest(0, (0, 1)), ReductionRequest(2, (2, 3))]
        _check_numeric(4, requests, router.route(requests))

    def test_result_reports_nodes(self):
        router = BirrdRouter(8)
        result = router.route(contiguous_reduction_requests(2, 8))
        assert result.nodes_explored > 0
        assert result.config_bits == 2 * 24  # 6 stages x 4 switches x 2 bits


class TestReorderRouting:
    def test_identity_permutation(self):
        router = BirrdRouter(8)
        result = router.route_permutation({i: i for i in range(8)})
        assert result.routed

    def test_reversal_permutation(self):
        router = BirrdRouter(8)
        perm = {i: 7 - i for i in range(8)}
        requests = [ReductionRequest(dst, (src,)) for src, dst in perm.items()]
        _check_numeric(8, requests, router.route(requests))

    def test_rotation_permutation(self):
        router = BirrdRouter(8)
        perm = {i: (i + 3) % 8 for i in range(8)}
        requests = [ReductionRequest(dst, (src,)) for src, dst in perm.items()]
        _check_numeric(8, requests, router.route(requests))

    def test_aw4_all_permutations_route(self):
        # Strict non-blocking for unicast (paper §III-B1): every permutation
        # of a 4-input BIRRD must be realisable.
        import itertools
        router = BirrdRouter(4)
        for perm in itertools.permutations(range(4)):
            mapping = {src: dst for src, dst in enumerate(perm)}
            result = router.route_permutation(mapping)
            assert result.routed, f"permutation {perm} failed to route"

    def test_partial_reorder(self):
        router = BirrdRouter(8)
        result = router.route_permutation({0: 5, 3: 1})
        assert result.routed


class TestRouteOrIdeal:
    def test_route_or_ideal_success(self):
        router = BirrdRouter(4)
        result = router.route_or_ideal(contiguous_reduction_requests(2, 4))
        assert result.routed

    def test_helper_contiguous_validation(self):
        with pytest.raises(ValueError):
            contiguous_reduction_requests(3, 8)
        with pytest.raises(ValueError):
            contiguous_reduction_requests(4, 8, destinations=[0])
        with pytest.raises(ValueError):
            contiguous_reduction_requests(4, 8, destinations=[1, 1])
