"""Tests for reorder patterns, their capabilities and reference implementations."""

import pytest

from repro.layout.patterns import (
    ReorderCapability,
    ReorderPattern,
    apply_arbitrary,
    apply_line_rotation,
    apply_row_reorder,
    apply_transpose,
    capability,
    capability_table,
    concordant_dataflow_flexibility,
)


class TestCapabilities:
    def test_table_covers_all_patterns(self):
        table = capability_table()
        assert {c.pattern for c in table} == set(ReorderPattern)

    def test_fixed_layout_limited_to_ports(self):
        cap = capability(ReorderPattern.NONE)
        assert not cap.removes_conflict(rows_needed=3, ports=2)
        assert cap.removes_conflict(rows_needed=2, ports=2)

    def test_line_rotation_adds_one_row(self):
        cap = capability(ReorderPattern.LINE_ROTATION)
        assert cap.removes_conflict(rows_needed=3, ports=2)
        assert not cap.removes_conflict(rows_needed=5, ports=2)

    def test_line_rotation_costs_bandwidth_and_storage(self):
        cap = capability(ReorderPattern.LINE_ROTATION)
        assert cap.extra_bandwidth_ports == 1
        assert cap.extra_copy_lines == 1

    def test_arbitrary_removes_all_conflicts(self):
        cap = capability(ReorderPattern.ARBITRARY)
        assert cap.removes_conflict(rows_needed=100, ports=2)

    def test_ordering_of_capability(self):
        # Fig. 5f: arbitrary reorder dominates every other pattern on P and S.
        flex = {p: concordant_dataflow_flexibility(p) for p in ReorderPattern}
        for p in ReorderPattern:
            if p is ReorderPattern.ARBITRARY:
                continue
            assert flex[ReorderPattern.ARBITRARY]["P"] >= flex[p]["P"]
            assert flex[ReorderPattern.ARBITRARY]["S"] >= flex[p]["S"]

    def test_reordering_does_not_grow_tiles(self):
        # Fig. 5 caption: reordering by itself cannot enlarge T flexibility.
        flex = concordant_dataflow_flexibility(ReorderPattern.ARBITRARY)
        fixed = concordant_dataflow_flexibility(ReorderPattern.NONE)
        assert flex["T"] == fixed["T"]


class TestReferenceImplementations:
    BUFFER = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]

    def test_transpose(self):
        out = apply_transpose(self.BUFFER)
        assert out[0] == [0, 4, 8, 12]
        assert out[3] == [3, 7, 11, 15]

    def test_transpose_requires_rectangular(self):
        with pytest.raises(ValueError):
            apply_transpose([[1, 2], [3]])

    def test_transpose_involution(self):
        assert apply_transpose(apply_transpose(self.BUFFER)) == self.BUFFER

    def test_row_reorder(self):
        perms = [[3, 2, 1, 0]] * 4
        out = apply_row_reorder(self.BUFFER, perms)
        assert out[0] == [3, 2, 1, 0]
        assert out[2] == [11, 10, 9, 8]

    def test_row_reorder_bad_permutation(self):
        with pytest.raises(ValueError):
            apply_row_reorder(self.BUFFER, [[0, 0, 1, 2]] * 4)

    def test_row_reorder_wrong_count(self):
        with pytest.raises(ValueError):
            apply_row_reorder(self.BUFFER, [[0, 1, 2, 3]])

    def test_line_rotation_copies_row(self):
        src, dst = apply_line_rotation(self.BUFFER, 3, [[99, 98, 97, 96]])
        assert src[3] == [12, 13, 14, 15]   # source keeps its copy
        assert dst[-1] == [12, 13, 14, 15]  # destination bank gains a copy

    def test_arbitrary_reorder_moves_everything(self):
        placement = {(0, 0): (3, 3), (3, 3): (0, 0)}
        out = apply_arbitrary(self.BUFFER, placement)
        assert out[3][3] == 0
        assert out[0][0] == 15
        assert out[1][1] == 5  # untouched positions stay

    def test_arbitrary_full_permutation(self):
        placement = {}
        rows, cols = 4, 4
        for r in range(rows):
            for c in range(cols):
                placement[(r, c)] = ((r + 1) % rows, (c + 2) % cols)
        out = apply_arbitrary(self.BUFFER, placement)
        flattened = sorted(v for row in out for v in row)
        assert flattened == list(range(16))
