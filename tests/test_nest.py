"""Tests for the NEST PE and array."""

import numpy as np
import pytest

from repro.nest.array import NestArray
from repro.nest.pe import ProcessingElement


class TestProcessingElement:
    def test_mac_accumulates(self):
        pe = ProcessingElement(0, 0)
        pe.load_weights([2, 3], into_shadow=False)
        pe.multiply_accumulate(5, 0)
        pe.multiply_accumulate(1, 1)
        assert pe.accumulator == 10 + 3

    def test_zero_points_applied(self):
        pe = ProcessingElement(0, 0, iact_zero_point=1, weight_zero_point=2)
        pe.load_weights([5], into_shadow=False)
        assert pe.multiply_accumulate(4, 0) == (4 - 1) * (5 - 2)

    def test_drain_clears(self):
        pe = ProcessingElement(0, 0)
        pe.load_weights([1], into_shadow=False)
        pe.multiply_accumulate(7, 0)
        assert pe.drain() == 7
        assert pe.accumulator == 0

    def test_ping_pong_weight_banks(self):
        pe = ProcessingElement(0, 0)
        pe.load_weights([1, 1], into_shadow=False)
        pe.load_weights([9, 9])  # shadow bank
        assert pe.weights == [1, 1]
        pe.swap_weight_banks()
        assert pe.weights == [9, 9]
        assert pe.shadow_weights == [1, 1]

    def test_capacity_enforced(self):
        pe = ProcessingElement(0, 0, weight_capacity=2)
        with pytest.raises(ValueError):
            pe.load_weights([1, 2, 3])

    def test_weight_index_bounds(self):
        pe = ProcessingElement(0, 0)
        pe.load_weights([1], into_shadow=False)
        with pytest.raises(IndexError):
            pe.multiply_accumulate(1, 3)

    def test_stats(self):
        pe = ProcessingElement(1, 2)
        pe.load_weights([1], into_shadow=False)
        pe.multiply_accumulate(1, 0)
        stats = pe.stats()
        assert stats["macs"] == 1 and stats["row"] == 1 and stats["col"] == 2


class TestNestArrayGemm:
    def _run(self, rows, cols, m, k, n, col_k=None, seed=0):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-4, 5, (m, k))
        iacts = rng.integers(-4, 5, (k, n))
        array = NestArray(rows, cols)
        results = list(array.run_gemm_tile(weights, iacts, col_k=col_k))
        return weights, iacts, array, results

    def _reconstruct(self, results, rows, cols, col_k, m, n):
        col_m = cols // col_k
        out = np.zeros((m, n), dtype=np.int64)
        for rr in results:
            n_idx = rr.temporal_tile[0]
            for m_lane in range(col_m):
                m_idx = rr.row * col_m + m_lane
                if m_idx >= m:
                    continue
                lanes = range(m_lane * col_k, (m_lane + 1) * col_k)
                out[m_idx, n_idx] = sum(rr.partial_sums[l] for l in lanes)
        return out

    def test_matches_numpy_single_lane_group(self):
        weights, iacts, _, results = self._run(4, 4, 4, 8, 5, col_k=4)
        out = self._reconstruct(results, 4, 4, 4, 4, 5)
        assert np.array_equal(out, weights @ iacts)

    def test_matches_numpy_two_outputs_per_row(self):
        weights, iacts, _, results = self._run(4, 4, 8, 6, 3, col_k=2)
        out = self._reconstruct(results, 4, 4, 2, 8, 3)
        assert np.array_equal(out, weights @ iacts)

    def test_row_drain_count(self):
        _, _, array, results = self._run(4, 4, 4, 8, 5, col_k=4)
        # One drain per row per output column.
        assert array.total_row_drains == 4 * 5
        assert len(results) == 20

    def test_too_many_output_rows_rejected(self):
        array = NestArray(2, 2)
        with pytest.raises(ValueError):
            list(array.run_gemm_tile(np.ones((5, 2)), np.ones((2, 2)), col_k=2))

    def test_col_k_must_divide_cols(self):
        array = NestArray(2, 4)
        with pytest.raises(ValueError):
            list(array.run_gemm_tile(np.ones((2, 4)), np.ones((4, 2)), col_k=3))

    def test_k_mismatch_rejected(self):
        array = NestArray(2, 2)
        with pytest.raises(ValueError):
            list(array.run_gemm_tile(np.ones((2, 3)), np.ones((4, 2))))

    def test_macs_counted(self):
        _, _, array, _ = self._run(4, 4, 4, 8, 5, col_k=4)
        assert array.total_macs() == 4 * 8 * 5

    def test_reset(self):
        _, _, array, _ = self._run(2, 2, 2, 2, 2)
        array.reset()
        assert array.total_macs() == 0
        assert array.total_row_drains == 0


class TestNestTiming:
    def test_zero_steps(self):
        array = NestArray(4, 4)
        timing = array.timing_for_tile(0, 4)
        assert timing.total_cycles == 0

    def test_steady_state_dominated_by_rows_or_macs(self):
        array = NestArray(4, 4)
        timing = array.timing_for_tile(temporal_steps=10, macs_per_pe_per_step=2)
        # Per round cost is max(macs_per_step, rows) = 4.
        assert timing.steady_cycles == 4 * 9

    def test_weight_load_hidden_latency(self):
        array = NestArray(8, 8)
        timing = array.timing_for_tile(4, 4)
        assert timing.weight_load_cycles_hidden == 64

    def test_full_utilization_in_steady_state(self):
        array = NestArray(4, 4)
        # Long run with macs_per_step >= rows: achieved MACs/cycle approaches
        # the PE count (the Fig. 9 "all PEs busy" claim).
        timing = array.timing_for_tile(temporal_steps=1000, macs_per_pe_per_step=8)
        assert timing.achieved_macs_per_cycle > 0.95 * array.num_pes

    def test_negative_inputs_rejected(self):
        array = NestArray(2, 2)
        with pytest.raises(ValueError):
            array.timing_for_tile(-1, 2)
