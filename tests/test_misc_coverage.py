"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.buffer.buffer import Buffer2D, BufferSpec
from repro.buffer.sram import BankConflictError
from repro.feather.accelerator import ExecutionStats, FeatherAccelerator
from repro.feather.config import FeatherConfig
from repro.layout.layout import parse_layout
from repro.layoutloop.cost_model import CostModel
from repro.layoutloop.arch import feather_arch
from repro.dataflow.mapping import Mapping, ParallelSpec, TileLevel
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec


class TestStrictBufferBehaviour:
    def test_word_interleaved_strict_conflict(self):
        buf = Buffer2D(BufferSpec(num_lines=8, line_size=4, banks=4,
                                  ports_per_bank=1, interleaving="word"))
        buf.write_word(0, 0, 1, strict=True)
        with pytest.raises(BankConflictError):
            buf.write_word(1, 0, 2, strict=True)  # same bank, second port use

    def test_tick_clears_strict_budget(self):
        buf = Buffer2D(BufferSpec(num_lines=8, line_size=4, banks=4,
                                  ports_per_bank=1, interleaving="word"))
        buf.write_word(0, 0, 1, strict=True)
        buf.tick()
        buf.write_word(1, 0, 2, strict=True)


class TestExecutionStats:
    def test_zero_cycles_edge_cases(self):
        stats = ExecutionStats()
        assert stats.utilization == 0.0
        assert stats.routed_fraction == 1.0

    def test_merge_preserves_layout_labels(self):
        a = ExecutionStats(cycles=1, macs=1, output_layout="A")
        b = ExecutionStats(cycles=1, macs=1, output_layout="B")
        assert a.merge(b).output_layout == "B"


class TestDegenerateWorkloads:
    def test_1x1_conv_with_one_channel(self, rng):
        layer = ConvLayerSpec("one", m=1, c=1, h=3, w=3, r=1, s=1)
        acc = FeatherAccelerator(FeatherConfig(array_rows=2, array_cols=2,
                                               stab_lines=64))
        iacts = rng.integers(1, 5, (1, 3, 3))
        weights = np.array([[[[2]]]])
        out, stats = acc.run_conv(layer, iacts, weights)
        assert np.array_equal(out[0], iacts[0] * 2)
        assert stats.macs == 9

    def test_gemm_with_single_column(self, rng):
        acc = FeatherAccelerator(FeatherConfig(array_rows=2, array_cols=4,
                                               stab_lines=64))
        weights = rng.integers(-3, 4, (3, 5))
        iacts = rng.integers(-3, 4, (5, 1))
        out, _ = acc.run_gemm(weights, iacts)
        assert np.array_equal(out, weights @ iacts)

    def test_cost_model_on_tiny_layer(self):
        layer = ConvLayerSpec("tiny", m=1, c=1, h=1, w=1, r=1, s=1)
        model = CostModel(feather_arch())
        mapping = Mapping("serial", 16, 16, (), TileLevel.of(),
                          ("N", "M", "C", "R", "S", "P", "Q"))
        report = model.evaluate(layer, mapping, parse_layout("HWC_C32"))
        assert report.macs == 1
        assert report.total_cycles >= 1

    def test_cost_model_depthwise_layer(self):
        layer = ConvLayerSpec("dw", m=32, c=32, h=14, w=14, r=3, s=3, padding=1,
                              groups=32)
        model = CostModel(feather_arch())
        mapping = Mapping("dw_map", 16, 16, (ParallelSpec("M", 16),),
                          TileLevel.of(M=16), ("N", "M", "C", "R", "S", "P", "Q"))
        report = model.evaluate(layer, mapping, parse_layout("HWC_C32"))
        assert report.macs == layer.macs
        assert report.energy_per_mac_pj > 0


class TestRoutingFallbacks:
    def test_route_always_raises_when_infeasible_budget(self):
        """With a zero node budget the router cannot succeed; 'always' surfaces it."""
        from repro.noc.routing import BirrdRouter
        cfg = FeatherConfig(array_rows=2, array_cols=8, stab_lines=64)
        acc = FeatherAccelerator(cfg, route_birrd="always")
        acc._router = BirrdRouter(8, node_budget=0, restarts=1)
        weights = np.ones((2, 8), dtype=int)
        iacts = np.ones((8, 2), dtype=int)
        with pytest.raises(RuntimeError):
            acc.run_gemm(weights, iacts)

    def test_large_aw_auto_falls_back(self):
        cfg = FeatherConfig(array_rows=2, array_cols=16, stab_lines=64)
        acc = FeatherAccelerator(cfg, route_birrd="auto")
        weights = np.ones((4, 16), dtype=int)
        iacts = np.ones((16, 2), dtype=int)
        out, stats = acc.run_gemm(weights, iacts)
        assert np.array_equal(out, weights @ iacts)
        assert stats.birrd_fallback_cycles == stats.birrd_cycles


class TestGemmSpecConversionRoundTrip:
    def test_conv_gemm_macs_agree(self):
        layer = ConvLayerSpec("rt", m=8, c=4, h=10, w=10, r=3, s=3, stride=2,
                              padding=1)
        m, k, n = layer.as_gemm_shape()
        gemm = GemmSpec("rt", m=m, k=k, n=n)
        assert gemm.macs == layer.macs
