"""The ``repro.api`` façade: requests, responses, Session, shims, dedup.

Four pillars:

* **JSON round trips** — hypothesis property tests build randomized
  requests (registry and inline forms) and assert
  ``from_json(to_json(r)) == r``; ditto responses.
* **Shim-vs-façade bit-identity** — the deprecated entry points
  (``search_model``, ``evaluate_model``, ``compare_architectures``,
  ``model_costs``) must return exactly what a directly-constructed
  ``Session`` returns, on all six golden cells.
* **In-flight dedup** — two identical ``submit()`` calls while the first
  is still running share one future, one execution, one response object.
* **Session semantics** — worker resolution precedence, cross-request
  cache reuse, error mapping, content-key invariance across request
  spelling.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    EvalRequest,
    EvalResponse,
    InvalidRequestError,
    SearchRequest,
    SearchResponse,
    Session,
    SweepRequest,
    SweepResponse,
    UnknownBackendError,
    content_key,
    request_from_dict,
)
from repro.api.codec import (
    arch_from_payload,
    arch_payload,
    mapping_from_payload,
    mapping_payload,
    workload_from_payload,
    workload_payload,
)
from repro.dataflow.mapping import output_stationary_mapping
from repro.layout.layout import parse_layout
from repro.scenarios import golden_matrix, resolve_arch, resolve_workload_set
from repro.search.signatures import (
    arch_signature,
    mapping_signature,
    workload_signature,
)
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec


# --------------------------------------------------------------- strategies
_names = st.text(st.characters(min_codepoint=97, max_codepoint=122),
                 min_size=1, max_size=12)

_conv_payloads = st.builds(
    lambda name, m, c, h, w, r: workload_payload(
        ConvLayerSpec(name=name, m=m, c=c, h=h, w=w, r=r, s=r)),
    _names, st.integers(1, 64), st.integers(1, 64), st.integers(3, 32),
    st.integers(3, 32), st.integers(1, 3))

_gemm_payloads = st.builds(
    lambda name, m, k, n: workload_payload(GemmSpec(name, m, k, n)),
    _names, st.integers(1, 128), st.integers(1, 128), st.integers(1, 128))

_workload_payloads = st.one_of(_conv_payloads, _gemm_payloads)

_search_requests = st.builds(
    SearchRequest,
    workloads=st.one_of(
        st.sampled_from(["resnet50[:2]", "fig10_gemms", "micro_gemms"]),
        st.lists(_workload_payloads, min_size=1, max_size=3).map(tuple)),
    arch=st.sampled_from(["FEATHER", "FEATHER-4x4", "Eyeriss-like"]),
    model=_names,
    metric=st.sampled_from(["edp", "latency", "energy"]),
    max_mappings=st.integers(1, 200),
    seed=st.integers(0, 2**31),
    prune=st.booleans(),
    backend=st.sampled_from(["analytical", "simulator", "crossval"]),
    layouts=st.one_of(st.none(),
                      st.just(("HWC_C32",)), st.just(("MK_K32", "MK_M32"))),
    workers=st.one_of(st.none(), st.integers(1, 8)),
    vectorize=st.booleans(),
    fresh_cache=st.booleans())

_eval_requests = st.builds(
    EvalRequest,
    workload=st.one_of(st.sampled_from(["fig10_gemms#0", "resnet50[:4]#2"]),
                       _workload_payloads),
    arch=st.sampled_from(["FEATHER", "FEATHER-4x4"]),
    layout=st.sampled_from(["HWC_C32", "MK_K32", "HWC_C4W8"]),
    mapping=st.just("output_stationary"),
    backend=st.sampled_from(["analytical", "simulator"]),
    seed=st.integers(0, 2**31))

_sweep_requests = st.builds(
    SweepRequest,
    filter=st.one_of(st.none(), st.sampled_from(["smoke", "golden", "sim"])),
    backend=st.one_of(st.none(), st.just("analytical")),
    skip_incompatible=st.booleans(),
    force=st.booleans(),
    workers=st.one_of(st.none(), st.integers(1, 4)),
    vectorize=st.booleans())


class TestRequestRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(request=_search_requests)
    def test_search_request_json_round_trip(self, request):
        assert SearchRequest.from_json(request.to_json()) == request

    @settings(max_examples=50, deadline=None)
    @given(request=_eval_requests)
    def test_eval_request_json_round_trip(self, request):
        assert EvalRequest.from_json(request.to_json()) == request

    @settings(max_examples=50, deadline=None)
    @given(request=_sweep_requests)
    def test_sweep_request_json_round_trip(self, request):
        assert SweepRequest.from_json(request.to_json()) == request

    @settings(max_examples=30, deadline=None)
    @given(payload=_workload_payloads)
    def test_workload_payload_round_trip_preserves_signature(self, payload):
        workload = workload_from_payload(payload)
        again = workload_from_payload(workload_payload(workload))
        assert workload_signature(again) == workload_signature(workload)
        assert again == workload

    def test_arch_payload_round_trip_preserves_signature(self):
        from repro.layoutloop.cost_model import DEFAULT_ENERGY_TABLE

        for name in ("FEATHER", "Eyeriss-like", "SIGMA-like (HWC_C32)",
                     "TPU-like", "FEATHER-4x4"):
            arch = resolve_arch(name)
            again = arch_from_payload(arch_payload(arch))
            assert again == arch
            assert (arch_signature(again, DEFAULT_ENERGY_TABLE)
                    == arch_signature(arch, DEFAULT_ENERGY_TABLE))

    def test_mapping_payload_round_trip_preserves_signature(self):
        layer = resolve_workload_set("resnet50[:1]")[0]
        mapping = output_stationary_mapping(layer, 16, 16)
        again = mapping_from_payload(mapping_payload(mapping))
        assert mapping_signature(again) == mapping_signature(mapping)
        assert again.name == mapping.name

    def test_request_from_dict_dispatch_and_unknown_kind(self):
        data = {"workloads": "resnet50[:2]", "arch": "FEATHER"}
        assert isinstance(request_from_dict("search", data), SearchRequest)
        with pytest.raises(InvalidRequestError, match="unknown request kind"):
            request_from_dict("explode", data)

    def test_unknown_field_and_bad_schema_version_rejected(self):
        with pytest.raises(InvalidRequestError, match="does not accept"):
            SearchRequest.from_dict({"workloads": "resnet50[:2]",
                                     "arch": "FEATHER", "turbo": True})
        with pytest.raises(InvalidRequestError, match="schema_version"):
            SearchRequest(workloads="resnet50[:2]", arch="FEATHER",
                          schema_version=99)

    def test_response_round_trips(self):
        with Session(name="t") as session:
            search = session.run(SearchRequest(
                workloads="fig10_gemms", arch="FEATHER-4x4",
                metric="latency", max_mappings=4))
            assert (SearchResponse.from_json(search.to_json()) == search)
            evald = session.run(EvalRequest(
                workload="fig10_gemms#0", arch="FEATHER-4x4",
                layout="MK_K32"))
            assert EvalResponse.from_json(evald.to_json()) == evald
            sweep = session.run(SweepRequest(filter="smoke-fig10"))
            assert SweepResponse.from_json(sweep.to_json()) == sweep


class TestContentKeys:
    def test_key_invariant_across_request_spelling(self):
        """Registry form and inline form of the same cell share a key."""
        by_name = SearchRequest(workloads="fig10_gemms", arch="FEATHER-4x4",
                                model="m", metric="latency", max_mappings=6)
        inline = SearchRequest(
            workloads=tuple(workload_payload(w)
                            for w in resolve_workload_set("fig10_gemms")),
            arch=arch_payload(resolve_arch("FEATHER-4x4")),
            model="m", metric="latency", max_mappings=6)
        assert content_key(by_name) == content_key(inline)

    def test_key_ignores_result_neutral_knobs(self):
        base = SearchRequest(workloads="resnet50[:2]", arch="FEATHER")
        variants = [
            SearchRequest(workloads="resnet50[:2]", arch="FEATHER",
                          workers=4),
            SearchRequest(workloads="resnet50[:2]", arch="FEATHER",
                          vectorize=False),
            SearchRequest(workloads="resnet50[:2]", arch="FEATHER",
                          fresh_cache=True),
        ]
        for variant in variants:
            assert content_key(variant) == content_key(base)

    def test_key_changes_with_config(self):
        base = SearchRequest(workloads="resnet50[:2]", arch="FEATHER")
        changed = [
            SearchRequest(workloads="resnet50[:2]", arch="FEATHER", seed=1),
            SearchRequest(workloads="resnet50[:2]", arch="FEATHER",
                          metric="latency"),
            SearchRequest(workloads="resnet50[:3]", arch="FEATHER"),
            SearchRequest(workloads="resnet50[:2]", arch="Eyeriss-like"),
        ]
        for variant in changed:
            assert content_key(variant) != content_key(base)

    def test_unresolvable_request_raises_invalid_request(self):
        with pytest.raises(InvalidRequestError, match="unknown workload set"):
            content_key(SearchRequest(workloads="not-a-set", arch="FEATHER"))


# The six pinned golden cells: every cell as (workload_set, arch, config,
# backend), the matrix the acceptance criterion names.
GOLDEN_CELLS = list(golden_matrix())


class TestShimFacadeBitIdentity:
    """The deprecated entry points == a direct Session, float for float."""

    @pytest.mark.parametrize("scenario", GOLDEN_CELLS,
                             ids=[s.name for s in GOLDEN_CELLS])
    def test_search_model_shim_matches_facade_on_golden_cell(self, scenario):
        from repro.search.engine import search_model

        workloads = resolve_workload_set(scenario.workload_set)
        arch = resolve_arch(scenario.arch)
        config = scenario.config
        backend = scenario.backend
        if backend == "crossval":
            # The legacy front of a crossval cell is cross_validate_model;
            # the façade reaches it via SearchRequest(backend="crossval").
            from repro.backends import cross_validate_model

            shim, validation = cross_validate_model(
                arch, workloads, model_name=scenario.name,
                metric=config.metric, max_mappings=config.max_mappings,
                seed=config.seed, prune=config.prune,
                arch_label=scenario.arch)
            with Session(name="facade") as session:
                facade = session.run(SearchRequest(
                    workloads=scenario.workload_set, arch=scenario.arch,
                    model=scenario.name, metric=config.metric,
                    max_mappings=config.max_mappings, seed=config.seed,
                    prune=config.prune, backend="crossval"))
            assert facade.crossval == validation.as_dict()
            assert facade.cost.total_cycles == shim.total_cycles
            assert facade.cost.total_energy_pj == shim.total_energy_pj
            return
        shim = search_model(arch, workloads, model_name=scenario.name,
                            metric=config.metric,
                            max_mappings=config.max_mappings,
                            seed=config.seed, prune=config.prune,
                            backend=backend)
        with Session(name="facade") as session:
            facade = session.run(SearchRequest(
                workloads=scenario.workload_set, arch=scenario.arch,
                model=scenario.name, metric=config.metric,
                max_mappings=config.max_mappings, seed=config.seed,
                prune=config.prune, backend=backend))
        assert facade.cost.total_cycles == shim.total_cycles
        assert facade.cost.total_energy_pj == shim.total_energy_pj
        assert facade.totals["edp"] == shim.edp
        for shim_choice, facade_layer in zip(shim.layer_choices,
                                             facade.layers):
            report = shim_choice.result.best_report
            assert facade_layer["mapping"] == shim_choice.result.best_mapping.name
            assert facade_layer["layout"] == shim_choice.result.best_layout.name
            assert facade_layer["total_cycles"] == report.total_cycles
            assert facade_layer["total_energy_pj"] == report.total_energy_pj

    def test_evaluate_model_and_compare_architectures_match_facade(self):
        from repro.layoutloop.cosearch import (
            compare_architectures,
            evaluate_model,
        )

        workloads = resolve_workload_set("resnet50[:3]")
        arches = [resolve_arch("FEATHER"), resolve_arch("Eyeriss-like")]
        with Session(name="facade") as session:
            for arch in arches:
                shim = evaluate_model(arch, workloads, model_name="m",
                                      max_mappings=10)
                facade = session.run(SearchRequest(
                    workloads="resnet50[:3]", arch=arch_payload(arch),
                    model="m", max_mappings=10, fresh_cache=True))
                assert facade.cost.total_cycles == shim.total_cycles
                assert facade.cost.total_energy_pj == shim.total_energy_pj
            compared = compare_architectures(arches, workloads,
                                             model_name="m", max_mappings=10)
            for arch in arches:
                facade = session.run(SearchRequest(
                    workloads="resnet50[:3]", arch=arch_payload(arch),
                    model="m", max_mappings=10))
                assert (facade.cost.total_cycles
                        == compared[arch.name].total_cycles)

    def test_model_costs_matches_facade(self):
        from repro.experiments.common import model_costs

        workloads = resolve_workload_set("fig10_gemms")
        arch = resolve_arch("FEATHER-4x4")
        costs = model_costs([arch], workloads, model_name="m",
                            metric="latency", max_mappings=8)
        with Session(name="facade") as session:
            facade = session.run(SearchRequest(
                workloads="fig10_gemms", arch=arch_payload(arch), model="m",
                metric="latency", max_mappings=8))
        assert facade.cost.total_cycles == costs[arch.name].total_cycles
        assert facade.cost.edp == costs[arch.name].edp


class TestSessionSemantics:
    def test_cross_request_cache_reuse(self):
        with Session(name="reuse") as session:
            first = session.run(SearchRequest(workloads="resnet50[:2]",
                                              arch="FEATHER",
                                              max_mappings=8))
            assert first.search["cache_misses"] > 0
            entries = session.describe()["evaluation_cache_entries"]
            assert entries > 0
            # A *different* request touching the same shapes reuses the
            # session cache (different model label -> different content
            # key -> real re-execution, served from cache).
            second = session.run(SearchRequest(workloads="resnet50[:2]",
                                               arch="FEATHER", model="other",
                                               max_mappings=8))
            assert second.search["cache_misses"] == 0
            assert second.totals == first.totals

    def test_fresh_cache_requests_keep_counters_deterministic(self):
        with Session(name="fresh") as session:
            runs = [session.run(SearchRequest(
                        workloads="resnet50[:2]", arch="FEATHER",
                        model=f"m{i}", max_mappings=8, fresh_cache=True))
                    for i in range(2)]
        assert runs[0].search == runs[1].search
        assert runs[0].search["cache_misses"] > 0
        assert runs[0].totals == runs[1].totals

    def test_worker_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEARCH_WORKERS", raising=False)
        session = Session(name="w")
        assert session.resolve_workers() == 1
        assert session.resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_SEARCH_WORKERS", "5")
        assert session.resolve_workers() == 5
        assert session.resolve_workers(2) == 2
        configured = Session(name="w2", workers=7)
        assert configured.resolve_workers() == 7
        assert configured.resolve_workers(2) == 2
        session.close()
        configured.close()

    def test_unknown_backend_raises_stable_code(self):
        with Session(name="err") as session:
            with pytest.raises(UnknownBackendError) as excinfo:
                session.run(SearchRequest(workloads="micro_gemms",
                                          arch="FEATHER-4x4",
                                          backend="bogus"))
        assert excinfo.value.code == "unknown_backend"
        assert excinfo.value.payload()["code"] == "unknown_backend"

    def test_eval_request_matches_backend_directly(self):
        from repro.backends import create_backend

        workload = resolve_workload_set("fig10_gemms")[0]
        arch = resolve_arch("FEATHER-4x4")
        mapping = output_stationary_mapping(workload, arch.pe_rows,
                                            arch.pe_cols)
        direct = create_backend("analytical", arch).evaluate(
            workload, mapping, parse_layout("MK_K32"))
        with Session(name="eval") as session:
            response = session.run(EvalRequest(
                workload="fig10_gemms#0", arch="FEATHER-4x4",
                layout="MK_K32"))
        assert response.backend_report == direct
        assert response.report["total_cycles"] == direct.total_cycles
        assert response.report["edp"] == direct.edp

    def test_sweep_request_matches_run_cell(self, tmp_path):
        from repro.scenarios import run_cell

        cell = next(s for s in GOLDEN_CELLS
                    if s.name == "golden-crossval-micro-gemms")
        direct = run_cell(cell).record
        with Session(name="sweep", runs_dir=tmp_path) as session:
            response = session.run(SweepRequest(filter=cell.name))
        assert len(response.records) == 1
        assert response.cached == [False]
        assert (response.records[0]["totals"] == direct.totals)
        assert (response.records[0]["crossval"] == direct.crossval)
        # The artifact landed in the session's runs_dir and a re-run is a
        # cache hit.
        with Session(name="sweep2", runs_dir=tmp_path) as session:
            again = session.run(SweepRequest(filter=cell.name))
        assert again.cached == [True]


class TestInFlightDedup:
    def test_identical_submits_coalesce_to_one_execution(self):
        session = Session(name="dedup")
        try:
            release = threading.Event()
            started = threading.Event()

            # Saturate the session's (single claimed) worker thread so the
            # two real submissions below are both enqueued while the
            # blocker holds the pool: their in-flight window is guaranteed
            # open when the second submit lands.
            def _blocker():
                started.set()
                release.wait(timeout=30)

            pool = session._thread_pool()
            blockers = [pool.submit(_blocker)
                        for _ in range(pool._max_workers)]
            started.wait(timeout=30)

            request = SearchRequest(workloads="resnet50[:2]", arch="FEATHER",
                                    max_mappings=6)
            first = session.submit(request)
            second = session.submit(request)
            assert second is first, "identical in-flight submits must share"
            assert session.stats.coalesced == 1
            release.set()
            for blocker in blockers:
                blocker.result(timeout=30)
            response = first.result(timeout=120)
            assert second.result(timeout=1) is response
            assert session.stats.executed == 1
        finally:
            session.close()

    def test_run_joins_inflight_submit(self):
        session = Session(name="dedup2")
        try:
            request = SearchRequest(workloads="fig10_gemms",
                                    arch="FEATHER-4x4", metric="latency",
                                    max_mappings=4)
            future = session.submit(request)
            joined = session.run(request)  # joins or re-executes post-release
            assert joined.totals == future.result(timeout=120).totals
        finally:
            session.close()

    def test_fresh_and_shared_cache_requests_never_coalesce(self):
        """A fresh_cache request must not be served by a warm in-flight
        execution (its per-call counters would leak into records)."""
        session = Session(name="dedup4")
        try:
            release = threading.Event()
            started = threading.Event()
            pool = session._thread_pool()
            blockers = [pool.submit(lambda: (started.set(),
                                             release.wait(timeout=30)))
                        for _ in range(pool._max_workers)]
            started.wait(timeout=30)
            warm = session.submit(SearchRequest(workloads="resnet50[:2]",
                                                arch="FEATHER",
                                                max_mappings=6))
            fresh = session.submit(SearchRequest(workloads="resnet50[:2]",
                                                 arch="FEATHER",
                                                 max_mappings=6,
                                                 fresh_cache=True))
            assert fresh is not warm
            release.set()
            for blocker in blockers:
                blocker.result(timeout=30)
            assert (fresh.result(timeout=120).totals
                    == warm.result(timeout=120).totals)
            assert session.stats.executed == 2
        finally:
            session.close()

    def test_closed_session_rejects_new_requests(self):
        session = Session(name="closed")
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run(SearchRequest(workloads="resnet50[:2]",
                                      arch="FEATHER"))
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(SearchRequest(workloads="resnet50[:2]",
                                         arch="FEATHER"))

    def test_submit_delivers_errors_through_future(self):
        with Session(name="dedup3") as session:
            future = session.submit(SearchRequest(workloads="micro_gemms",
                                                  arch="FEATHER-4x4",
                                                  backend="bogus"))
            with pytest.raises(UnknownBackendError):
                future.result(timeout=60)
