"""Pareto-frontier co-search and fused two-layer mappings.

The contracts under test:

* **Dominance is a strict partial order** — :func:`repro.search.frontier.
  dominates` is irreflexive and transitive (hypothesis, over arbitrary
  objective vectors), and :func:`pareto_fold` maintains a mutually
  non-dominated front whatever the insertion order.
* **The scalar winner is always a frontier member** — on every analytical
  golden cell, ``search_frontier`` returns a :class:`SearchResult`
  bit-identical to :meth:`Mapper.search` (report, mapping and layout) and
  the frontier's ``winner()`` is that same candidate.
* **Frontier payloads round-trip bit-identically** — ``to_dict -> json ->
  from_dict -> to_dict`` is the identity for :class:`ShapeFrontier` and
  :class:`FusedPairResult`, and a ``frontier=True``/``fused=True`` cell's
  payloads survive a full :class:`ScenarioRecord` JSON round trip.
* **Fused mappings are legal** — on the ResNet-50 residual block every
  adjacent pair fuses, the winner's shared-tile footprint fits the on-chip
  buffer, and the fused candidates save intermediate DRAM traffic.
* **Isolation** — ``frontier=``/``fused=`` requests demand the analytical
  backend and the exhaustive policy, at request *and* config level.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SearchRequest, Session
from repro.errors import InvalidRequestError
from repro.layoutloop.cosearch import (
    FusedPairResult,
    fused_pair_search,
    fusible,
)
from repro.layoutloop.mapper import Mapper
from repro.scenarios.builtin import golden_matrix
from repro.scenarios.record import ScenarioRecord
from repro.scenarios.registry import resolve_arch, resolve_workload_set
from repro.scenarios.spec import SearchConfig
from repro.search.frontier import (
    OBJECTIVES,
    ShapeFrontier,
    buffer_footprint_bytes,
    dominates,
    pareto_fold,
)
from repro.search.signatures import workload_signature
from repro.workloads.resnet50 import resnet50_residual_block

ANALYTICAL_GOLDEN_CELLS = [cell for cell in golden_matrix()
                           if cell.backend == "analytical"]

_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
              allow_infinity=False),
    min_size=len(OBJECTIVES), max_size=len(OBJECTIVES)).map(tuple)


def _unique(workloads):
    seen = {}
    for workload in workloads:
        seen.setdefault(workload_signature(workload), workload)
    return list(seen.values())


# ----------------------------------------------------------- dominance order
@settings(max_examples=100, deadline=None)
@given(vector=_vectors)
def test_dominance_is_irreflexive(vector):
    assert not dominates(vector, vector)


@settings(max_examples=100, deadline=None)
@given(a=_vectors, b=_vectors, c=_vectors)
def test_dominance_is_transitive(a, b, c):
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


@settings(max_examples=100, deadline=None)
@given(a=_vectors, b=_vectors)
def test_dominance_is_antisymmetric(a, b):
    assert not (dominates(a, b) and dominates(b, a))


@settings(max_examples=60, deadline=None)
@given(vectors=st.lists(_vectors, min_size=1, max_size=24))
def test_pareto_fold_front_is_mutually_non_dominated(vectors):
    front = []
    for index, vector in enumerate(vectors):
        pareto_fold(front, vector, index)
    kept = [vector for vector, _ in front]
    # No kept point dominates another kept point.
    for i, a in enumerate(kept):
        for j, b in enumerate(kept):
            if i != j:
                assert not dominates(a, b)
    # Completeness: every input is dominated-or-equalled by some kept point.
    for vector in vectors:
        assert any(all(k <= v for k, v in zip(kept_vec, vector))
                   for kept_vec in kept)


# ------------------------------------------------- winner membership/identity
@pytest.mark.parametrize("cell", ANALYTICAL_GOLDEN_CELLS,
                         ids=lambda c: c.name)
def test_frontier_winner_is_bit_identical_to_scalar_search(cell):
    arch = resolve_arch(cell.arch)
    config = cell.config
    for workload in _unique(resolve_workload_set(cell.workload_set)):
        scalar = Mapper(arch, metric=config.metric,
                        max_mappings=config.max_mappings,
                        seed=config.seed).search(workload)
        result, frontier = Mapper(
            arch, metric=config.metric, max_mappings=config.max_mappings,
            seed=config.seed).search_frontier(workload)
        assert result.best_report == scalar.best_report
        assert result.best_mapping.name == scalar.best_mapping.name
        assert result.best_layout.name == scalar.best_layout.name
        winner = frontier.winner()
        assert winner.mapping == scalar.best_mapping.name
        assert winner.layout == scalar.best_layout.name
        assert winner.edp == scalar.best_report.edp
        assert winner.total_cycles == scalar.best_report.total_cycles
        assert winner.total_energy_pj == scalar.best_report.total_energy_pj


def test_frontier_points_are_mutually_non_dominated_and_canonical():
    arch = resolve_arch("FEATHER")
    workload = resnet50_residual_block()[0]
    _, frontier = Mapper(arch, max_mappings=12).search_frontier(workload)
    assert len(frontier.points) >= 1
    vectors = [p.objectives for p in frontier.points]
    for i, a in enumerate(vectors):
        for j, b in enumerate(vectors):
            if i != j:
                assert not dominates(a, b)
    keys = [(p.objectives, p.mapping_index, p.layout_index)
            for p in frontier.points]
    assert keys == sorted(keys)  # canonical order, deterministic JSON
    # The footprint objective is the documented tile measure.
    mapper = Mapper(arch, max_mappings=12)
    by_index = {m_idx: mapping
                for m_idx, mapping in enumerate(
                    mapper.candidate_mappings(workload))}
    for point in frontier.points:
        assert point.buffer_footprint_bytes == buffer_footprint_bytes(
            workload, by_index[point.mapping_index], arch)


def test_frontier_requires_exhaustive_analytical():
    arch = resolve_arch("FEATHER")
    workload = resnet50_residual_block()[0]
    with pytest.raises(ValueError, match="exhaustive"):
        Mapper(arch, policy="halving").search_frontier(workload)


# ------------------------------------------------------------- round tripping
def test_shape_frontier_round_trips_bit_identically():
    arch = resolve_arch("FEATHER")
    workload = resnet50_residual_block()[1]
    _, frontier = Mapper(arch, max_mappings=12).search_frontier(workload)
    payload = frontier.to_dict()
    rebuilt = ShapeFrontier.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt == frontier
    assert rebuilt.to_dict() == payload
    assert rebuilt.winner() == frontier.winner()


def test_fused_pair_result_round_trips_bit_identically():
    arch = resolve_arch("FEATHER")
    producer, consumer = resnet50_residual_block()[:2]
    fused = fused_pair_search(Mapper(arch, max_mappings=12),
                              producer, consumer)
    payload = fused.to_dict()
    rebuilt = FusedPairResult.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt == fused
    assert rebuilt.to_dict() == payload


def test_frontier_cell_record_round_trips_through_json(tmp_path):
    cell = golden_matrix().get("golden-fused-residual")
    with Session(name="frontier-test") as session:
        response = session.run(SearchRequest(
            workloads=cell.workload_set, arch=cell.arch, model=cell.name,
            metric=cell.config.metric, max_mappings=cell.config.max_mappings,
            seed=cell.config.seed, frontier=True, fused=True,
            fresh_cache=True))
    assert response.frontiers is not None and len(response.frontiers) == 3
    assert response.fused is not None and len(response.fused) == 2
    from repro.scenarios.runner import run_cell

    result = run_cell(cell, runs_dir=tmp_path, workers=1)
    record = result.record
    assert record.frontiers == response.frontiers
    assert record.fused == response.fused
    reread = ScenarioRecord.read(result.path)
    assert reread.to_dict() == record.to_dict()
    assert reread.deterministic_payload() == record.deterministic_payload()
    # The typed views rebuild from the recorded payloads bit-identically.
    for shape_payload in reread.frontiers:
        frontier = ShapeFrontier.from_dict(shape_payload)
        assert frontier.to_dict() == shape_payload
        assert frontier.points[frontier.winner_index] is frontier.winner()


# ------------------------------------------------------------ fused mappings
def test_residual_block_pairs_are_fusible_and_legal():
    arch = resolve_arch("FEATHER")
    layers = resnet50_residual_block()
    assert [l.name for l in layers] == [
        "resnet50_layer6", "resnet50_layer7", "resnet50_layer8"]
    mapper = Mapper(arch, max_mappings=12)
    for producer, consumer in zip(layers, layers[1:]):
        assert fusible(producer, consumer)
        fused = fused_pair_search(mapper, producer, consumer)
        assert fused.capacity_bytes == arch.buffer.capacity_bytes
        winner = fused.winner()
        # The winning shared-tile mapping is legal and saves DRAM traffic.
        assert winner["legal"]
        assert winner["buffer_footprint_bytes"] <= fused.capacity_bytes
        assert winner["saved_dram_bytes"] > 0
        # Both member mappings exist and share the intermediate layout.
        assert winner["producer_mapping"] and winner["consumer_mapping"]
        assert isinstance(winner["layout"], str)


def test_fused_rejects_non_fusible_pairs():
    arch = resolve_arch("FEATHER")
    layers = resnet50_residual_block()
    assert not fusible(layers[1], layers[0])
    with pytest.raises(InvalidRequestError, match="fusible"):
        # layer7 -> layer6: the 3x3 emits 64 channels, layer6 eats 256.
        fused_pair_search(Mapper(arch, max_mappings=12),
                          layers[1], layers[0])


# ---------------------------------------------------------------- validation
def test_frontier_request_requires_analytical_exhaustive():
    with pytest.raises(InvalidRequestError, match="frontier"):
        SearchRequest(workloads="resnet50_residual_block", arch="FEATHER",
                      frontier=True, policy="halving")
    with pytest.raises(InvalidRequestError, match="frontier"):
        SearchRequest(workloads="resnet50_residual_block", arch="FEATHER",
                      fused=True, backend="simulator")


def test_search_config_validates_frontier_policy():
    with pytest.raises(ValueError, match="exhaustive"):
        SearchConfig(name="bad", frontier=True, policy="evolutionary")
    config = SearchConfig(name="ok", frontier=True, fused=True)
    rebuilt = SearchConfig.from_dict(config.as_dict())
    assert rebuilt == config
    assert config.identity() != SearchConfig(name="ok").identity()
