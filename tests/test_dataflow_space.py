"""Tests for mapping-space enumeration."""

import pytest

from repro.dataflow.space import MappingSpace, enumerate_parallelisms
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

LAYER = ConvLayerSpec("layer", m=32, c=64, h=16, w=16, r=3, s=3, stride=1, padding=1)
GEMM = GemmSpec("gemm", m=32, k=64, n=48)


class TestEnumerateParallelisms:
    def test_includes_serial(self):
        cands = list(enumerate_parallelisms({"M": 32, "C": 64}, ("M", "C"), 4, 4))
        assert tuple() in cands

    def test_single_dim_degrees_bounded_by_array(self):
        cands = list(enumerate_parallelisms({"M": 32}, ("M",), 4, 4))
        for cand in cands:
            for spec in cand:
                assert spec.degree <= 16

    def test_two_dim_degrees_bounded_by_axes(self):
        cands = list(enumerate_parallelisms({"M": 32, "C": 64}, ("M", "C"), 4, 8))
        for cand in cands:
            if len(cand) == 2:
                assert cand[0].degree * cand[1].degree <= 32

    def test_no_duplicates(self):
        cands = list(enumerate_parallelisms({"M": 32, "C": 64}, ("M", "C"), 4, 4))
        keys = [tuple((s.dim, s.degree) for s in c) for c in cands]
        assert len(keys) == len(set(keys))

    def test_skips_trivial_dims(self):
        cands = list(enumerate_parallelisms({"M": 32, "R": 1}, ("M", "R"), 4, 4))
        assert all(all(s.dim != "R" for s in c) for c in cands)


class TestMappingSpace:
    def test_iterates_valid_mappings(self):
        space = MappingSpace(LAYER, 8, 8)
        mappings = list(space.iter_mappings())
        assert mappings
        for m in mappings[:50]:
            assert m.total_parallelism <= 64

    def test_size_matches_iteration(self):
        space = MappingSpace(LAYER, 4, 4)
        assert space.size() == len(list(space.iter_mappings()))

    def test_sample_is_subset(self):
        space = MappingSpace(LAYER, 8, 8)
        sample = space.sample(10, seed=3)
        assert len(sample) == 10

    def test_sample_larger_than_space_returns_all(self):
        space = MappingSpace(LAYER, 2, 2, max_parallel_dims=1)
        sample = space.sample(10_000)
        assert len(sample) == space.size()

    def test_sample_deterministic(self):
        space = MappingSpace(LAYER, 8, 8)
        assert [m.name for m in space.sample(5, seed=7)] == \
               [m.name for m in space.sample(5, seed=7)]

    def test_allowed_parallel_dims_respected(self):
        space = MappingSpace(LAYER, 8, 8, allowed_parallel_dims=("P", "Q"))
        for m in space.iter_mappings():
            assert all(p.dim in ("P", "Q") for p in m.parallel)

    def test_max_parallel_dims_one(self):
        space = MappingSpace(LAYER, 8, 8, max_parallel_dims=1)
        for m in space.iter_mappings():
            assert len(m.parallel) <= 1

    def test_gemm_space(self):
        space = MappingSpace(GEMM, 8, 8)
        mappings = list(space.iter_mappings())
        assert mappings
        dims_used = {p.dim for m in mappings for p in m.parallel}
        assert dims_used <= {"M", "N", "K"}

    def test_gemm_reduction_dims(self):
        space = MappingSpace(GEMM, 8, 8)
        mapping = next(space.iter_mappings())
        assert mapping.reduction_dims == frozenset({"K"})

    def test_unsupported_workload_raises(self):
        with pytest.raises(TypeError):
            MappingSpace("not a workload", 4, 4)

    def test_orders_respected(self):
        orders = (("N", "M", "C", "R", "S", "P", "Q"),)
        space = MappingSpace(LAYER, 4, 4, allowed_orders=orders)
        for m in space.iter_mappings():
            assert m.order == tuple(d for d in orders[0])
