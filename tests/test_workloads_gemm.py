"""Unit tests for GEMM specs and the Fig. 10 workload set."""

import pytest

from repro.workloads.conv import LayerKind
from repro.workloads.gemm import GemmSpec, fig10_workloads


class TestGemmSpec:
    def test_macs(self):
        g = GemmSpec("g", m=4, k=5, n=6)
        assert g.macs == 120

    def test_elem_counts(self):
        g = GemmSpec("g", m=4, k=5, n=6)
        assert g.input_elems == 20
        assert g.weight_elems == 30
        assert g.output_elems == 24

    def test_dim_lookup(self):
        g = GemmSpec("g", m=4, k=5, n=6)
        assert g.dim("m") == 4
        assert g.dim("K") == 5
        with pytest.raises(KeyError):
            g.dim("C")

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            GemmSpec("g", m=0, k=5, n=6)

    def test_as_conv_preserves_macs(self):
        g = GemmSpec("g", m=4, k=5, n=6)
        conv = g.as_conv()
        assert conv.macs == g.macs
        assert conv.kind is LayerKind.FC

    def test_as_conv_dimension_mapping(self):
        g = GemmSpec("g", m=4, k=5, n=6)
        conv = g.as_conv()
        assert conv.m == 4
        assert conv.c == 5
        assert conv.p * conv.q == 6


class TestFig10Workloads:
    def test_four_workloads(self):
        assert len(fig10_workloads()) == 4

    def test_names(self):
        names = [w.name for w in fig10_workloads()]
        assert names == ["workload_A", "workload_B", "workload_C", "workload_D"]

    def test_workload_a_is_regular(self):
        a = fig10_workloads()[0]
        assert a.m % 4 == 0 and a.n % 4 == 0

    def test_workload_b_is_reduction_free(self):
        b = fig10_workloads()[1]
        assert b.k == 1

    def test_workload_d_is_reduction_heavy(self):
        d = fig10_workloads()[3]
        assert d.k > d.m and d.k > d.n
