"""Tests for the mapper (dataflow/layout search) and the whole-model co-search."""

import pytest

from repro.baselines.registry import eyeriss_like, nvdla_like, sigma_like
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.cosearch import (
    cosearch_layer,
    compare_architectures,
    evaluate_model,
    unique_workloads,
)
from repro.layoutloop.mapper import Mapper
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

LAYER = ConvLayerSpec("layer", m=64, c=64, h=14, w=14, r=3, s=3, stride=1, padding=1)
SMALL_C_LAYER = ConvLayerSpec("small_c", m=64, c=3, h=32, w=32, r=3, s=3, padding=1)
GEMM = GemmSpec("gemm", m=64, k=128, n=96)


class TestMapper:
    def test_fixed_parallelism_arch_has_single_mapping(self):
        mapper = Mapper(nvdla_like())
        mappings = mapper.candidate_mappings(LAYER)
        assert len(mappings) == 1
        assert mappings[0].parallel_degree("M") == 16
        assert mappings[0].parallel_degree("C") == 16

    def test_flexible_arch_has_many_mappings(self):
        mapper = Mapper(feather_arch(), max_mappings=50)
        assert len(mapper.candidate_mappings(LAYER)) > 10

    def test_allowed_parallel_dims_respected(self):
        mapper = Mapper(eyeriss_like(), max_mappings=50)
        allowed = set(eyeriss_like().allowed_parallel_dims)
        for mapping in mapper.candidate_mappings(LAYER):
            assert all(p.dim in allowed for p in mapping.parallel)

    def test_fixed_layout_arch_single_layout(self):
        mapper = Mapper(nvdla_like())
        layouts = mapper.candidate_layouts(LAYER)
        assert len(layouts) == 1
        assert layouts[0].name == "HWC_C32"

    def test_fixed_layout_gemm_fallback(self):
        # NVDLA's conv layout does not name M/K; GEMM workloads fall back to MK_K32.
        mapper = Mapper(nvdla_like())
        layouts = mapper.candidate_layouts(GEMM)
        assert layouts[0].name == "MK_K32"

    def test_flexible_layout_arch_uses_library(self):
        mapper = Mapper(feather_arch())
        assert len(mapper.candidate_layouts(LAYER)) == 7
        assert len(mapper.candidate_layouts(GEMM)) == 3

    def test_search_returns_best_by_metric(self):
        mapper = Mapper(feather_arch(), metric="latency", max_mappings=40)
        result = mapper.search(LAYER)
        assert result.best_report is not None
        assert result.evaluated > 0
        assert result.best_value == result.best_report.total_cycles

    def test_search_cached(self):
        mapper = Mapper(feather_arch(), max_mappings=40)
        first = mapper.search(LAYER)
        second = mapper.search(LAYER)
        assert first is second

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            Mapper(feather_arch(), metric="speed")

    def test_feather_beats_nvdla_on_small_channel_layer(self):
        # NVDLA's fixed C=16 parallelism wastes PEs when C=3; FEATHER adapts.
        feather = Mapper(feather_arch(), metric="latency", max_mappings=60).search(
            SMALL_C_LAYER)
        nvdla = Mapper(nvdla_like(), metric="latency").search(SMALL_C_LAYER)
        assert feather.best_report.total_cycles < nvdla.best_report.total_cycles

    def test_gemm_search(self):
        mapper = Mapper(feather_arch(), max_mappings=40)
        result = mapper.search(GEMM)
        assert result.best_report.macs == GEMM.macs


class TestUniqueWorkloads:
    def test_dedup_counts(self):
        layers = [LAYER, LAYER, SMALL_C_LAYER]
        grouped = unique_workloads(layers)
        assert len(grouped) == 2
        assert grouped[0][1] == 2

    def test_order_preserved(self):
        grouped = unique_workloads([SMALL_C_LAYER, LAYER])
        assert grouped[0][0] is SMALL_C_LAYER

    def test_gemm_and_conv_mix(self):
        grouped = unique_workloads([LAYER, GEMM, GEMM])
        assert len(grouped) == 2


class TestCosearchAndModelEvaluation:
    def test_cosearch_layer(self):
        result = cosearch_layer(feather_arch(), LAYER, max_mappings=40)
        assert result.best_layout is not None
        assert result.best_report.slowdown == 1.0

    def test_evaluate_model_aggregates(self):
        layers = [LAYER, LAYER, SMALL_C_LAYER]
        cost = evaluate_model(feather_arch(), layers, model_name="toy",
                              max_mappings=30)
        assert cost.total_macs == sum(l.macs for l in layers)
        assert cost.total_cycles > 0
        assert 0 < cost.avg_utilization <= 1.0

    def test_evaluate_model_dedup_weighting(self):
        once = evaluate_model(feather_arch(), [LAYER], max_mappings=30)
        twice = evaluate_model(feather_arch(), [LAYER, LAYER], max_mappings=30)
        assert twice.total_cycles == pytest.approx(2 * once.total_cycles)

    def test_compare_architectures_keys(self):
        arches = [nvdla_like(), feather_arch()]
        costs = compare_architectures(arches, [LAYER, SMALL_C_LAYER], max_mappings=30)
        assert set(costs) == {"NVDLA-like", "FEATHER"}

    def test_feather_best_edp_among_suite(self):
        arches = [nvdla_like(), eyeriss_like(), sigma_like(layout="HWC_C32"),
                  feather_arch()]
        costs = compare_architectures(arches, [SMALL_C_LAYER, LAYER], max_mappings=40)
        feather_edp = costs["FEATHER"].edp
        for name, cost in costs.items():
            assert feather_edp <= cost.edp * 1.001, f"{name} beat FEATHER on EDP"

    def test_model_cost_properties(self):
        cost = evaluate_model(feather_arch(), [LAYER], max_mappings=30)
        assert cost.energy_per_mac_pj > 0
        assert cost.geomean_cycles() > 0
        assert cost.geomean_energy_per_mac() > 0
        assert cost.layouts_used()
        assert 0 <= cost.stall_fraction <= 1
        assert 0 <= cost.reorder_fraction <= 1
