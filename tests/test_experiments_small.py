"""Tests for the lightweight experiment modules (Fig. 4, 9, 10, 11, 14, tables)
and for the scenario-layer ports of the figure co-searches."""

import pytest

from repro.experiments import fig2, fig4, fig9, fig10, fig11, fig13, fig14, tables
from repro.experiments.common import format_table, geomean, normalize
from repro.scenarios import ports, run_cell
from repro.workloads.resnet50 import resnet50_layers


class TestCommonHelpers:
    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([]) == 0.0

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "2.500" in text

    def test_normalize(self):
        out = normalize({"x": 2.0, "y": 4.0}, "x")
        assert out == {"x": 1.0, "y": 2.0}


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig4.run()

    def test_eight_mappings(self, rows):
        assert [r.mapping for r in rows] == [f"M{i}" for i in range(1, 9)]

    def test_feather_picks_are_concordant(self, rows):
        picks = fig4.feather_picks(rows)
        for pick in picks.values():
            assert pick.practical_utilization == pytest.approx(1.0)
            assert pick.slowdown == pytest.approx(1.0)

    def test_dataflow_matters(self, rows):
        # Paper takeaway: M1 vs M4 on the same workload differ in utilization.
        by_id = {r.mapping: r for r in rows}
        assert by_id["M4"].practical_utilization > by_id["M1"].practical_utilization

    def test_layout_matters(self, rows):
        # Paper takeaway: M2 vs M4 use the same dataflow but different layouts.
        by_id = {r.mapping: r for r in rows}
        assert by_id["M4"].practical_utilization > by_id["M2"].practical_utilization

    def test_discordant_mappings_stall(self, rows):
        by_id = {r.mapping: r for r in rows}
        for mid in ("M2", "M3", "M7"):
            assert by_id[mid].slowdown > 1.0

    def test_concordant_mappings_read_fewer_lines(self, rows):
        by_id = {r.mapping: r for r in rows}
        assert by_id["M4"].lines_per_cycle < by_id["M2"].lines_per_cycle
        assert by_id["M8"].lines_per_cycle < by_id["M7"].lines_per_cycle


class TestFig9:
    def test_walkthrough(self):
        result = fig9.run()
        assert result.correct
        assert result.spatial_reduction_group >= 2
        assert result.row_drains > 0
        assert result.weight_load_cycles_hidden == 16  # AH^2 for the 4x4 array


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig10.run(max_mappings=150)

    def test_four_workloads(self, rows):
        assert len(rows) == 4

    def test_feather_never_worse(self, rows):
        for row in rows:
            assert row.feather_utilization >= row.systolic_utilization - 1e-9

    def test_feather_wins_on_skewed_shapes(self, rows):
        by_name = {r.workload: r for r in rows}
        assert by_name["workload_C"].feather_advantage > 1.2
        assert by_name["workload_D"].feather_advantage > 1.2

    def test_regular_workload_both_full(self, rows):
        a = next(r for r in rows if r.workload == "workload_A")
        assert a.systolic_utilization == pytest.approx(1.0)
        assert a.feather_utilization == pytest.approx(1.0)

    def test_summary(self, rows):
        s = fig10.summary(rows)
        assert s["feather_avg_utilization"] > s["systolic_avg_utilization"]


class TestFig11:
    def test_rir_walkthrough(self):
        result = fig11.run()
        assert result.correct
        assert result.conflict_free
        assert result.input_layout == "HWC_C4"
        assert result.output_layout == "MPQ_Q4"

    def test_write_trace_covers_all_oacts(self):
        result = fig11.run()
        layer = fig11.walkthrough_layer()
        assert len(result.write_trace) == layer.oact_elems

    def test_writes_balanced_across_banks(self):
        result = fig11.run()
        layer = fig11.walkthrough_layer()
        counts = list(result.writes_per_bank.values())
        # The row-major output layout spreads oActs over one bank per output
        # column (Q = 3 here), and every used bank gets the same share.
        assert len(counts) == min(4, layer.q)
        assert max(counts) == min(counts)


class TestFig14:
    def test_fig14a_ratios(self):
        rows = fig14.run_fig14a((64, 256))
        for row in rows:
            assert 1.1 < row.birrd_over_fan_area < 1.9
            assert 1.7 < row.birrd_over_art_area < 2.9

    def test_fig14b_headlines(self):
        result = fig14.run_fig14b()
        assert 0.95 < result.feather_over_eyeriss < 1.3
        assert result.sigma_over_feather > 1.8
        assert result.birrd_area_fraction < 0.1

    def test_combined_run(self):
        out = fig14.run()
        assert "fig14a" in out and "fig14b" in out


class TestTables:
    def test_table_i(self):
        rows = tables.table_i()
        assert any(r["work"] == "FEATHER" for r in rows)
        assert len(rows) >= 8

    def test_table_iii(self):
        rows = tables.table_iii()
        assert rows[-1]["work"] == "FEATHER"
        assert rows[-1]["implementation"] == "RIR"

    def test_table_iv(self):
        rows = tables.table_iv()
        assert len(rows) == 9
        feather = next(r for r in rows if r["name"] == "FEATHER")
        assert feather["dataflow"] == "TOPS"

    def test_table_v(self):
        rows = tables.table_v_rows()
        assert len(rows) == 7


class TestScenarioPorts:
    """Each ported figure must reproduce its legacy output *exactly*.

    The scenario layer re-runs the same workload sets with the same engine
    settings, so any inequality here means the port silently drifted —
    every comparison below is ``==``, never ``approx``.
    """

    def test_fig2_port_matches_legacy_feather_column(self):
        legacy = fig2.run(max_mappings=20, full_model_layers=2,
                          models=("resnet50",))
        matrix = ports.fig2_scenarios(max_mappings=20, models=("resnet50",))
        record = run_cell(matrix[0]).record
        latencies = ports.fig2_feather_latencies(record)
        motivation_rows = legacy["resnet50"][:-1]  # drop the full-model bar
        assert len(latencies) == len(motivation_rows)
        for row in motivation_rows:
            assert latencies[row.workload] == row.feather_latency

    def test_fig10_port_matches_legacy_feather_column(self):
        legacy = fig10.run(max_mappings=150)
        record = run_cell(ports.fig10_scenario(max_mappings=150)).record
        utilizations = ports.fig10_feather_utilizations(record)
        assert len(utilizations) == len(legacy)
        for row in legacy:
            assert utilizations[row.workload] == row.feather_utilization

    def test_fig13_port_matches_legacy_series(self):
        legacy = fig13.run(workload_names=("bert",), max_mappings=12,
                           max_layers=2)["bert"]
        matrix = ports.fig13_scenarios(("bert",), max_layers=2,
                                       max_mappings=12)
        records = [run_cell(scenario).record for scenario in matrix]
        series = ports.fig13_series_from_records("bert", records)
        assert series.normalized_latency == legacy.normalized_latency
        assert (series.normalized_energy_per_mac
                == legacy.normalized_energy_per_mac)
        assert series.utilization == legacy.utilization
        assert series.stall_fraction == legacy.stall_fraction
        assert series.reorder_fraction == legacy.reorder_fraction

    def test_tables_port_matches_legacy_search_stats(self):
        workloads = resnet50_layers(include_fc=False)[:2]
        legacy = tables.search_stats_table(workloads, max_mappings=12)
        matrix = ports.tables_scenarios("resnet50[:2]", max_mappings=12)
        rows = ports.search_stats_rows_from_records(
            [run_cell(scenario).record for scenario in matrix])
        assert len(rows) == len(legacy)
        deterministic = ("arch", "unique_layers", "evaluations", "pruned",
                         "cache_hit_rate")
        for legacy_row, port_row in zip(legacy, rows):
            assert {k: legacy_row[k] for k in deterministic} == port_row
