"""Tests for FEATHER's configuration, quantization module, RIR planner and controller."""

import math

import numpy as np
import pytest

from repro.feather.config import FeatherConfig
from repro.feather.controller import generate_instruction_stream, pack_configuration
from repro.feather.quantize import QuantizationModule
from repro.feather.rir import RirPlanner
from repro.layout.layout import parse_layout
from repro.noc.birrd import EggConfig


class TestFeatherConfig:
    def test_defaults(self):
        cfg = FeatherConfig()
        assert cfg.num_pes == 256
        assert cfg.birrd_topology.aw == 16

    def test_aw_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            FeatherConfig(array_rows=4, array_cols=6)

    def test_stab_is_word_interleaved(self):
        cfg = FeatherConfig(array_rows=4, array_cols=8)
        spec = cfg.stab_spec
        assert spec.interleaving == "word"
        assert spec.banks == 8

    def test_strb_is_single_bank(self):
        cfg = FeatherConfig(array_rows=4, array_cols=8)
        assert cfg.strb_spec.banks == 1
        assert cfg.strb_spec.line_size == 8

    def test_instruction_width_matches_fig8(self):
        # AW*(2*log(AW)-1)... the paper's formula counts switch bits plus a
        # write address; ours is 2 bits per switch plus log2(depth).
        cfg = FeatherConfig(array_rows=4, array_cols=8, stab_lines=1024)
        expected = 2 * cfg.birrd_topology.num_switches + 10
        assert cfg.instruction_bits_per_entry == expected

    def test_peak_throughput(self):
        cfg = FeatherConfig(array_rows=16, array_cols=16, frequency_mhz=1000)
        assert cfg.peak_throughput_gmacs() == pytest.approx(256.0)


class TestQuantizationModule:
    def test_identity_scale(self):
        qm = QuantizationModule(scale=1.0, zero_point=0)
        assert qm.quantize(5) == 5

    def test_clipping(self):
        qm = QuantizationModule(scale=1.0, zero_point=0, out_bits=8)
        assert qm.quantize(1000) == 127
        assert qm.quantize(-1000) == -128

    def test_zero_point_shift(self):
        qm = QuantizationModule(scale=1.0, zero_point=10)
        assert qm.quantize(5) == 15

    def test_scale_applied(self):
        qm = QuantizationModule(scale=0.5, zero_point=0)
        assert qm.quantize(10) == 5

    def test_array_matches_scalar(self):
        qm = QuantizationModule(scale=0.031, zero_point=3)
        values = [-500, -17, 0, 19, 400]
        arr = qm.quantize_array(values)
        qm2 = QuantizationModule(scale=0.031, zero_point=3)
        assert list(arr) == [qm2.quantize(v) for v in values]

    def test_calibrated_covers_range(self):
        accs = [-1000, -5, 0, 900, 1200]
        qm = QuantizationModule.calibrated(accs)
        quantized = qm.quantize_array(accs)
        assert quantized.max() <= 127 and quantized.min() >= -128
        assert quantized.max() == 127 or quantized.min() == -128

    def test_unsigned_range(self):
        qm = QuantizationModule(scale=1.0, zero_point=0, signed=False)
        assert qm.qmin == 0 and qm.qmax == 255

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            QuantizationModule(scale=0.0)


class TestRirPlanner:
    def _planner(self):
        layout = parse_layout("MPQ_Q4")
        return RirPlanner(aw=4, output_layout=layout,
                          output_dims={"M": 4, "P": 4, "Q": 4}, ports_per_bank=2)

    def test_destination_uses_layout(self):
        planner = self._planner()
        line0, bank0 = planner.destination({"M": 0, "P": 0, "Q": 0})
        line1, bank1 = planner.destination({"M": 0, "P": 0, "Q": 1})
        assert line0 == line1          # same row-major line
        assert bank1 == (bank0 + 1) % 4

    def test_plan_cycle_conflict_free(self):
        planner = self._planner()
        # Four outputs with distinct Q land in four distinct banks.
        coords = [{"M": 0, "P": 0, "Q": q} for q in range(4)]
        plan = planner.plan_cycle([[i] for i in range(4)], coords)
        assert plan.conflict_free
        assert len({w.bank for w in plan.writes}) == 4

    def test_plan_cycle_detects_overload(self):
        planner = self._planner()
        # Four outputs with the same Q all target the same bank: exceeds 2 ports.
        coords = [{"M": m, "P": 0, "Q": 0} for m in range(4)]
        plan = planner.plan_cycle([[i] for i in range(4)], coords)
        assert not plan.conflict_free
        assert plan.serialization_factor == pytest.approx(2.0)

    def test_requests_have_distinct_ports(self):
        planner = self._planner()
        coords = [{"M": m, "P": 0, "Q": 0} for m in range(4)]
        plan = planner.plan_cycle([[i] for i in range(4)], coords)
        ports = [r.output_port for r in plan.requests]
        assert len(set(ports)) == len(ports)

    def test_mismatched_lengths_raise(self):
        planner = self._planner()
        with pytest.raises(ValueError):
            planner.plan_cycle([[0]], [])

    def test_audit_layer_conflict_free(self):
        planner = self._planner()
        cycles = [[{"M": 0, "P": p, "Q": q} for q in range(4)] for p in range(4)]
        audit = planner.audit_layer(cycles)
        assert audit["conflict_free_fraction"] == 1.0

    def test_audit_layer_empty(self):
        audit = self._planner().audit_layer([])
        assert audit["cycles"] == 0


class TestController:
    def test_pack_configuration_distinct(self):
        from repro.noc.birrd import BirrdTopology
        topo = BirrdTopology(4)
        cfg_a = [[EggConfig.PASS] * 2] * 3
        cfg_b = [[EggConfig.SWAP] * 2] * 3
        word_a = pack_configuration(cfg_a, topo, [0, 0, 0, 0], 64)
        word_b = pack_configuration(cfg_b, topo, [0, 0, 0, 0], 64)
        assert word_a != word_b

    def test_instruction_stream_sizing(self):
        config = FeatherConfig(array_rows=4, array_cols=4, stab_lines=64)
        layout = parse_layout("MPQ_Q4")
        planner = RirPlanner(4, layout, {"M": 4, "P": 2, "Q": 4})
        plans = [planner.plan_cycle([[0], [1]], [{"M": 0, "P": 0, "Q": 0},
                                                 {"M": 1, "P": 0, "Q": 1}])
                 for _ in range(10)]
        stream = generate_instruction_stream(plans, config)
        assert stream.num_words == 10
        assert stream.total_bits == 10 * stream.bits_per_word
        assert stream.total_bytes < 1024  # per-layer reconfig stays tiny

    def test_instruction_stream_reconfig_cycles(self):
        config = FeatherConfig(array_rows=4, array_cols=4, stab_lines=64)
        layout = parse_layout("MPQ_Q4")
        planner = RirPlanner(4, layout, {"M": 4, "P": 2, "Q": 4})
        plans = [planner.plan_cycle([[0]], [{"M": 0, "P": 0, "Q": 0}])]
        stream = generate_instruction_stream(plans, config)
        assert stream.reconfiguration_cycles(fetch_width_bits=32) >= 1

    def test_unrouted_cycles_counted_for_large_aw(self):
        config = FeatherConfig(array_rows=4, array_cols=32, stab_lines=64)
        layout = parse_layout("MPQ_Q4")
        planner = RirPlanner(32, layout, {"M": 4, "P": 2, "Q": 4})
        plans = [planner.plan_cycle([[0]], [{"M": 0, "P": 0, "Q": 0}])]
        stream = generate_instruction_stream(plans, config)
        # AW=32 routing is skipped (brute-force fallback), so it is reported.
        assert stream.unrouted_cycles == 1
