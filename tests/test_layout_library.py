"""Tests for the layout libraries used by the paper's search."""

from repro.layout.library import (
    conv_layout_library,
    gemm_layout_library,
    motivation_layouts,
)


class TestLayoutLibraries:
    def test_conv_library_has_seven_layouts(self):
        assert len(conv_layout_library()) == 7

    def test_conv_library_names(self):
        names = {l.name for l in conv_layout_library()}
        assert "HWC_C32" in names
        assert "HWC_C4W8" in names

    def test_gemm_library_has_three_layouts(self):
        assert len(gemm_layout_library()) == 3

    def test_gemm_library_names(self):
        names = {l.name for l in gemm_layout_library()}
        assert names == {"MK_K32", "MK_M32", "MK_M4K8"}

    def test_conv_layouts_cover_chw(self):
        for layout in conv_layout_library():
            assert layout.covers(["C", "H", "W"])

    def test_resize_to_line_size(self):
        layouts = conv_layout_library(line_size=16)
        for layout in layouts:
            # Resizing is best-effort; at minimum the library still parses.
            assert layout.line_size >= 1

    def test_motivation_layouts_include_fig4_pair(self):
        names = {l.name for l in motivation_layouts()}
        assert "HWC_W2C3" in names
        assert "HCW_W8" in names
