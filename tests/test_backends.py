"""Evaluation-backend layer: protocol, registry, parity and the RIR claim.

The headline assertions machine-check the paper's reorder-in-reduction
story instead of trusting a docstring: for co-searched (mapping, layout)
pairs on FEATHER the analytical model claims ``slowdown == 1.0``
(``max(lines_accessed/ports, 1)`` never binds), and the cycle-level
simulator — which measures bank conflicts independently, from the actual
StaB access stream — must agree, and must never observe oAct write
serialization.  A deliberately discordant layout shows the simulator's
conflict detection is not vacuous.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.backends import (
    AnalyticalBackend,
    BackendReport,
    SimulatorBackend,
    backend_names,
    create_backend,
    cross_validate_model,
    multifidelity_search,
    report_from_cost,
    seeded_conv_tensors,
    seeded_gemm_tensors,
)
from repro.backends.simulator import feather_config_for
from repro.baselines.registry import sigma_like
from repro.layout.layout import parse_layout
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.cost_model import CostModel
from repro.layoutloop.mapper import Mapper
from repro.search.engine import SearchEngine, search_model
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec
from repro.workloads.micro import (
    bert_head_micro,
    micro_conv_layers,
    micro_gemm_layers,
    resnet50_head_micro,
)

ARCH44 = feather_arch(4, 4)
ARCH88 = feather_arch(8, 8)


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "analytical" in backend_names()
        assert "simulator" in backend_names()

    def test_create_by_name_and_default(self):
        assert isinstance(create_backend("analytical", ARCH44),
                          AnalyticalBackend)
        assert isinstance(create_backend("simulator", ARCH44),
                          SimulatorBackend)
        assert isinstance(create_backend(None, ARCH44), AnalyticalBackend)

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ValueError, match="analytical"):
            create_backend("quantum", ARCH44)

    def test_instance_passthrough_rejects_options(self):
        backend = AnalyticalBackend(ARCH44)
        assert create_backend(backend, ARCH44) is backend
        with pytest.raises(ValueError, match="reconfigure"):
            create_backend(backend, ARCH44, seed=1)


# ------------------------------------------------------- analytical parity
class TestAnalyticalBackend:
    def test_bit_identical_to_cost_model(self, small_conv_layer):
        mapper = Mapper(ARCH88, max_mappings=4)
        mapping = mapper.candidate_mappings(small_conv_layer)[0]
        layout = mapper.candidate_layouts(small_conv_layer)[0]

        direct = CostModel(ARCH88).evaluate(small_conv_layer, mapping, layout)
        via_backend = AnalyticalBackend(ARCH88).evaluate(
            small_conv_layer, mapping, layout)
        assert via_backend == report_from_cost(direct)
        for field_name in ("macs", "compute_cycles", "slowdown",
                           "stall_cycles", "total_cycles", "utilization",
                           "practical_utilization", "energy_breakdown_pj"):
            assert getattr(via_backend, field_name) == getattr(direct,
                                                               field_name)
        assert via_backend.total_energy_pj == direct.total_energy_pj
        assert via_backend.edp == direct.edp

    def test_search_model_backend_analytical_is_default_path(self):
        layers = micro_conv_layers()
        default = search_model(ARCH44, layers, max_mappings=6)
        explicit = search_model(ARCH44, layers, max_mappings=6,
                                backend="analytical")
        assert default.total_cycles == explicit.total_cycles
        assert default.total_energy_pj == explicit.total_energy_pj
        assert default.search_stats.backend == "analytical"


# ------------------------------------------------------ simulator backend
class TestSimulatorBackend:
    def test_deterministic_across_instances(self):
        conv = micro_conv_layers()[0]
        mapper = Mapper(ARCH44, max_mappings=4)
        result = mapper.search(conv)
        a = SimulatorBackend(ARCH44, seed=3).evaluate(
            conv, result.best_mapping, result.best_layout)
        b = SimulatorBackend(ARCH44, seed=3).evaluate(
            conv, result.best_mapping, result.best_layout)
        assert a == b
        assert a.extra["seed"] == 3.0

    def test_seeded_tensors_depend_on_shape_not_name(self):
        conv = micro_conv_layers()[0]
        renamed = dataclasses.replace(conv, name="other_label")
        ia, wa = seeded_conv_tensors(conv, seed=1)
        ib, wb = seeded_conv_tensors(renamed, seed=1)
        assert np.array_equal(ia, ib) and np.array_equal(wa, wb)
        ic, _ = seeded_conv_tensors(conv, seed=2)
        assert not np.array_equal(ia, ic)

    def test_seeded_gemm_tensors_shapes(self):
        gemm = GemmSpec("g", m=5, k=7, n=3)
        inputs, weights = seeded_gemm_tensors(gemm, seed=0)
        assert inputs.shape == (5, 7) and weights.shape == (3, 7)

    def test_rejects_non_rir_architecture(self):
        with pytest.raises(ValueError, match="reorder-in-reduction"):
            SimulatorBackend(sigma_like(reorder="offchip"))

    def test_rejects_non_power_of_two_width(self):
        arch = dataclasses.replace(ARCH44, pe_cols=6)
        with pytest.raises(ValueError, match="power of two"):
            feather_config_for(arch)

    def test_mac_bound_guards_against_huge_cells(self):
        big = ConvLayerSpec("big", m=64, c=64, h=56, w=56, r=3, s=3)
        backend = SimulatorBackend(ARCH44)
        mapper = Mapper(ARCH44, max_mappings=1)
        mapping = mapper.candidate_mappings(big)[0]
        layout = mapper.candidate_layouts(big)[0]
        with pytest.raises(ValueError, match="micro-cells"):
            backend.evaluate(big, mapping, layout)

    def test_report_consistency(self):
        gemm = micro_gemm_layers()[0]
        mapper = Mapper(ARCH44, max_mappings=4)
        result = mapper.search(gemm)
        report = SimulatorBackend(ARCH44).evaluate(
            gemm, result.best_mapping, result.best_layout)
        assert isinstance(report, BackendReport)
        assert report.backend == "simulator"
        assert report.macs == gemm.macs
        assert report.total_cycles == pytest.approx(
            report.compute_cycles + report.stall_cycles
            + report.reorder_cycles_exposed)
        assert 0.0 < report.practical_utilization <= 1.0
        # Energy is the analytical estimate: comparable, not simulated.
        assert report.total_energy_pj > 0
        assert report.edp == report.total_energy_pj * report.total_cycles


# -------------------------------------------------- ExecutionStats parity
class TestExecutionStatsConventions:
    def test_derived_properties_match_cost_report_vocabulary(self):
        from repro.feather.accelerator import ExecutionStats

        stats = ExecutionStats(cycles=300.0, macs=1200, num_pes=16,
                               read_slowdown=1.5, write_serialization=1.0)
        assert stats.total_cycles == 300.0
        assert stats.slowdown == 1.5
        assert stats.compute_cycles == pytest.approx(200.0)
        assert stats.stall_cycles == pytest.approx(100.0)
        assert stats.practical_utilization == stats.utilization
        assert stats.avg_utilization == stats.utilization
        assert stats.macs_per_cycle == pytest.approx(4.0)

    def test_zero_cycles_edge(self):
        from repro.feather.accelerator import ExecutionStats

        stats = ExecutionStats()
        assert stats.slowdown == 1.0
        assert stats.stall_cycles == 0.0
        assert stats.macs_per_cycle == 0.0


# ------------------------------------------------------- the RIR claim
class TestRirClaimMachineChecked:
    """Co-searched pairs never stall — analytical and simulated agree."""

    @pytest.mark.parametrize("workload,arch", [
        pytest.param(resnet50_head_micro(), ARCH88, id="resnet50-head"),
        pytest.param(bert_head_micro(), ARCH88, id="bert-head"),
        pytest.param(bert_head_micro(seq_len=16), ARCH44, id="bert-head-4x4"),
    ])
    def test_cosearched_pair_is_conflict_free_in_simulation(self, workload,
                                                           arch):
        engine = SearchEngine(arch, max_mappings=8, seed=0)
        result = engine.search_layer(workload)
        # Analytical side: RIR co-switching means max(lines/ports, 1)
        # never binds — the model prices the winner stall-free.
        assert result.best_report.slowdown == 1.0
        assert result.best_report.stall_cycles == 0.0

        # Simulated side, with the simulator in the layout loop (the
        # co-switching FEATHER actually performs): across the candidate
        # layouts a concordant one must exist, the latency-best choice must
        # realise the model's claim — measured StaB read conflicts at
        # exactly 1.0 — and *no* layout may ever serialize oAct writes.
        simulator = SimulatorBackend(arch, seed=0)
        mapper = Mapper(arch, max_mappings=8, seed=0)
        reports = [simulator.evaluate(workload, result.best_mapping, layout)
                   for layout in mapper.candidate_layouts(workload)]
        assert all(r.extra["write_serialization"] == 1.0 for r in reports)
        best = min(reports, key=lambda r: r.total_cycles)
        assert best.extra["read_slowdown"] == 1.0
        assert best.slowdown == 1.0
        assert best.stall_cycles == 0.0

    def test_multifidelity_repairs_analytical_layout_tie(self):
        """On FEATHER every layout ties analytically (RIR prices them all
        stall-free), so pure-analytical co-search picks the library's first
        layout — which for the 7x7/stride-2 head conv *does* conflict in
        simulation.  Widening the multi-fidelity shortlist over the tied
        layouts lets the simulator break the tie with a genuinely
        conflict-free one."""
        from repro.backends import multifidelity_search_layer
        from repro.layout.library import conv_layout_library

        workload = resnet50_head_micro()
        top_k = len(conv_layout_library())
        result = multifidelity_search_layer(ARCH88, workload,
                                            metric="latency",
                                            max_mappings=8, top_k=top_k)
        analytical_pick = result.candidates[0]
        assert analytical_pick.simulated.extra["read_slowdown"] > 1.0
        assert result.best.simulated.extra["read_slowdown"] == 1.0
        assert not result.agreement  # verification changed the winner
        assert (result.best.simulated.total_cycles
                < analytical_pick.simulated.total_cycles)

    def test_discordant_layout_detected_by_simulator(self):
        """The agreement above is not vacuous: a layout that scatters the
        concurrently-read words across one bank's lines does stall."""
        gemm = bert_head_micro(seq_len=16)
        mapper = Mapper(ARCH44, max_mappings=8)
        mapping = mapper.search(gemm).best_mapping
        # K-major with a 1-wide intra-line block: the col_k lanes read K
        # values that live in different lines of the same bank region.
        discordant = parse_layout("KM_M1")
        simulated = SimulatorBackend(ARCH44).evaluate(gemm, mapping,
                                                      discordant)
        assert simulated.extra["read_slowdown"] > 1.0
        assert simulated.stall_cycles > 0.0


# ------------------------------------------------------- mapper + engine
class TestSearchOnSimulator:
    def test_mapper_search_on_simulator_backend(self):
        gemm = micro_gemm_layers()[0]
        mapper = Mapper(ARCH44, metric="latency", max_mappings=4,
                        backend="simulator")
        result = mapper.search(gemm)
        assert result.best_report.backend == "simulator"
        assert result.pruned == 0  # bounds are analytical-only
        assert result.best_report.total_cycles > 0

    def test_search_model_on_simulator_forces_serial(self):
        cost = search_model(ARCH44, micro_gemm_layers(), metric="latency",
                            max_mappings=4, workers=4, backend="simulator")
        assert cost.search_stats.workers == 1
        assert cost.search_stats.backend == "simulator"
        assert cost.total_cycles > 0

    def test_simulator_search_picks_conflict_free_layout(self):
        cost = search_model(ARCH44, micro_gemm_layers(), metric="latency",
                            max_mappings=4, backend="simulator")
        for choice in cost.layer_choices:
            assert choice.result.best_report.slowdown == 1.0


# ------------------------------------------------------- multi-fidelity
class TestMultiFidelity:
    def test_agrees_with_pure_analytical_on_golden_micro_cells(self):
        """Acceptance: multi-fidelity returns the analytical winners on the
        golden micro-cells, each carrying simulator-verified top-k."""
        cases = [
            ("micro_convs", micro_conv_layers(), "edp", 4),
            ("micro_gemms", micro_gemm_layers(), "latency", 6),
        ]
        for name, layers, metric, budget in cases:
            analytical = search_model(ARCH44, layers, model_name=name,
                                      metric=metric, max_mappings=budget)
            multi = multifidelity_search(ARCH44, layers, model_name=name,
                                         metric=metric, max_mappings=budget,
                                         top_k=3)
            assert multi.agreement, f"{name}: verification changed a winner"
            for (result, _), choice in zip(multi.layers,
                                           analytical.layer_choices):
                assert result.best.mapping.name == \
                    choice.result.best_mapping.name
                assert result.best.layout.name == \
                    choice.result.best_layout.name
                # Every shortlisted candidate carries both fidelities.
                for candidate in result.candidates:
                    assert candidate.analytical.backend == "analytical"
                    assert candidate.simulated.backend == "simulator"

    def test_shortlist_ranked_and_bounded(self):
        conv = micro_conv_layers()[0]
        from repro.backends import multifidelity_search_layer

        result = multifidelity_search_layer(ARCH44, conv, top_k=2,
                                            max_mappings=4)
        assert len(result.candidates) <= 2
        assert [c.rank for c in result.candidates] == list(
            range(len(result.candidates)))
        assert result.analytical_evaluated >= len(result.candidates)

    def test_top_k_validation(self):
        from repro.backends import multifidelity_search_layer

        with pytest.raises(ValueError, match="top_k"):
            multifidelity_search_layer(ARCH44, micro_conv_layers()[0],
                                       top_k=0)


# ------------------------------------------------------- cross-validation
class TestCrossValidation:
    def test_deltas_and_rir_claim(self):
        cost, validation = cross_validate_model(
            ARCH44, micro_gemm_layers(), model_name="micro",
            metric="latency", max_mappings=6)
        assert len(validation.cells) == len(cost.layer_choices)
        assert validation.rir_claim_holds
        for cell in validation.cells:
            assert cell.analytical_cycles > 0
            assert cell.simulated_cycles > 0
            assert cell.cycle_delta == pytest.approx(
                cell.simulated_cycles / cell.analytical_cycles - 1.0)
            assert cell.utilization_delta == pytest.approx(
                cell.simulated_utilization - cell.analytical_utilization)
        assert validation.max_abs_cycle_delta == max(
            abs(c.cycle_delta) for c in validation.cells)

    def test_analytical_side_matches_plain_search(self):
        layers = micro_gemm_layers()
        cost, _ = cross_validate_model(ARCH44, layers, model_name="micro",
                                       metric="latency", max_mappings=6)
        plain = search_model(ARCH44, layers, model_name="micro",
                             metric="latency", max_mappings=6)
        assert cost.total_cycles == plain.total_cycles
        assert cost.total_energy_pj == plain.total_energy_pj

    def test_as_dict_round_trips_through_json(self):
        import json

        _, validation = cross_validate_model(
            ARCH44, micro_gemm_layers()[:1], model_name="one",
            metric="latency", max_mappings=4)
        payload = validation.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["cells"][0]["simulated_write_serialization"] == 1.0
