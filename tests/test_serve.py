"""End-to-end ``repro.serve``: real HTTP on an ephemeral port.

The server thread shares one :class:`~repro.api.Session` with the test,
so the core assertion is direct: ``POST /v1/search`` must return exactly
``session.run(SearchRequest(...)).to_dict()`` — the wire adds encoding,
never numbers.  Plus health, every error path with its stable code, eval
and sweep round trips.

The whole module runs twice: once over a single-threaded session
(``threads=1`` — requests serialize through one dispatch slot) and once
over the concurrent front (``threads=4``).  Every assertion must hold on
both, which is what pins "the threaded server changes scheduling, never
payloads".  Dedicated concurrency behavior (coalescing under parallel
load, the shared store) lives in ``test_serve_concurrent.py``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import EvalRequest, SearchRequest, Session, SweepRequest
from repro.serve import create_server

SEARCH = {"workloads": "fig10_gemms", "arch": "FEATHER-4x4",
          "model": "e2e", "metric": "latency", "max_mappings": 6}


@pytest.fixture(scope="module", params=[1, 4],
                ids=["threads1", "threads4"])
def service(request):
    """A live server on an ephemeral port + the session behind it."""
    threads = request.param
    session = Session(name=f"test-serve-{threads}", threads=threads)
    server = create_server("127.0.0.1", 0, session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", session
    server.shutdown()
    server.server_close()
    session.close()
    thread.join(timeout=10)


def _post(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_healthz(service):
    base, session = service
    with urllib.request.urlopen(base + "/v1/healthz", timeout=30) as resp:
        payload = json.loads(resp.read())
    assert payload["status"] == "ok"
    assert payload["version"] == __import__("repro").__version__
    assert payload["name"] == session.name
    assert "analytical" in payload["backends"]


def _deterministic(payload: dict) -> dict:
    """Drop run metadata (wall clock, warm-vs-cold cache counters): the
    comparable part must be bit-identical between wire and direct runs."""
    data = {k: v for k, v in payload.items()
            if k not in ("elapsed_s", "workers")}
    data["search"] = {k: v for k, v in payload["search"].items()
                      if k not in ("cache_hits", "cache_misses")}
    return data


def test_search_over_http_equals_direct_session_run(service):
    base, session = service
    status, served = _post(base, "/v1/search", SEARCH)
    assert status == 200
    direct = session.run(SearchRequest(**SEARCH))
    assert _deterministic(served) == _deterministic(direct.to_dict())
    # Floats survive the wire exactly (shortest-round-trip repr).
    assert served["totals"]["total_cycles"] == direct.totals["total_cycles"]
    assert served["layers"] == direct.layers
    assert served["key"] == direct.key


def test_eval_over_http_equals_direct_session_run(service):
    base, session = service
    body = {"workload": "fig10_gemms#1", "arch": "FEATHER-4x4",
            "layout": "MK_M32"}
    status, served = _post(base, "/v1/eval", body)
    assert status == 200
    direct = session.run(EvalRequest(**body))
    assert served["report"] == direct.report
    assert served["backend"] == direct.backend
    assert served["key"] == direct.key


def test_sweep_over_http_equals_direct_session_run(service):
    base, session = service
    body = {"filter": "golden-fig10"}
    status, served = _post(base, "/v1/sweep", body)
    assert status == 200
    direct = session.run(SweepRequest(**body))

    def _records(payloads):
        # Wall clock is run metadata; everything else (totals, layers,
        # engine counters, keys) must be bit-identical.
        return [{k: v for k, v in record.items()
                 if k not in ("elapsed_s", "workers")}
                for record in payloads]

    assert _records(served["records"]) == _records(direct.records)
    assert [r["scenario"] for r in served["records"]] == ["golden-fig10-gemms"]


def test_error_codes_are_stable(service):
    base, _ = service
    cases = [
        ("/v1/search", {"workloads": "no-such-set", "arch": "FEATHER"},
         400, "invalid_request"),
        ("/v1/search", {"workloads": "micro_gemms", "arch": "FEATHER-4x4",
                        "backend": "bogus"}, 400, "unknown_backend"),
        ("/v1/search", {"workloads": "resnet50", "arch": "FEATHER",
                        "backend": "simulator"}, 422, "incompatible_cell"),
        ("/v1/search", {"workloads": "resnet50[:2]", "arch": "FEATHER",
                        "schema_version": 99}, 400, "invalid_request"),
        ("/v1/nope", {}, 404, "not_found"),
    ]
    for path, body, expected_status, expected_code in cases:
        status, payload = _post(base, path, body)
        assert status == expected_status, (path, body, payload)
        assert payload["error"]["code"] == expected_code
        assert payload["error"]["message"]


def test_malformed_json_is_a_structured_400(service):
    base, _ = service
    request = urllib.request.Request(
        base + "/v1/search", data=b"{not json",
        headers={"Content-Type": "application/json"}, method="POST")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400
    assert json.loads(excinfo.value.read())["error"]["code"] == \
        "invalid_request"


def test_repeat_traffic_is_served_warm(service):
    base, session = service
    before = session.describe()["evaluation_cache_entries"]
    _post(base, "/v1/search", SEARCH)  # may or may not be first overall
    status, warm = _post(base, "/v1/search", dict(SEARCH, model="warm"))
    assert status == 200
    assert warm["search"]["cache_misses"] == 0
    assert session.describe()["evaluation_cache_entries"] >= before
