"""Cross-module integration tests: the pieces of the paper working together."""

import numpy as np
import pytest

from repro.feather.accelerator import FeatherAccelerator, reference_conv
from repro.feather.config import FeatherConfig
from repro.feather.controller import generate_instruction_stream
from repro.feather.rir import RirPlanner
from repro.layout.layout import parse_layout
from repro.layoutloop.cosearch import cosearch_layer
from repro.layoutloop.arch import feather_arch
from repro.workloads.conv import ConvLayerSpec


class TestCosearchDrivesAccelerator:
    """The Layoutloop co-search picks a (dataflow, layout); the functional
    accelerator then runs the layer and must observe no conflicts — the end-to-
    end version of the paper's RIR claim."""

    def test_cosearched_pair_runs_conflict_free(self, rng):
        layer = ConvLayerSpec("e2e", m=8, c=8, h=8, w=8, r=3, s=3, padding=1)
        result = cosearch_layer(feather_arch(4, 8), layer, max_mappings=40)
        assert result.best_report.slowdown == 1.0

        config = FeatherConfig(array_rows=4, array_cols=8, stab_lines=1024)
        acc = FeatherAccelerator(config)
        iacts = rng.integers(-4, 5, (layer.c, layer.h, layer.w))
        weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))
        out, stats = acc.run_conv(layer, iacts, weights,
                                  output_layout=parse_layout("MPQ_Q8"),
                                  input_layout=parse_layout("HWC_C8"))
        assert np.array_equal(out, reference_conv(iacts, weights, layer))
        assert stats.write_serialization == pytest.approx(1.0)

    def test_layer_chain_layout_coswitch(self, rng):
        """Two chained layers: layer 1 writes oActs in the layout layer 2 reads."""
        layer1 = ConvLayerSpec("chain1", m=8, c=4, h=6, w=6, r=3, s=3, padding=1)
        layer2 = ConvLayerSpec("chain2", m=4, c=8, h=6, w=6, r=1, s=1)

        config = FeatherConfig(array_rows=4, array_cols=8, stab_lines=1024)
        acc = FeatherAccelerator(config)
        next_layout = parse_layout("HWC_C8")  # what layer 2 wants (channel-last)

        iacts1 = rng.integers(-3, 4, (layer1.c, layer1.h, layer1.w))
        w1 = rng.integers(-2, 3, (layer1.m, layer1.c, layer1.r, layer1.s))
        out1, stats1 = acc.run_conv(layer1, iacts1, w1, output_layout=next_layout)
        assert stats1.write_serialization <= 2.0

        w2 = rng.integers(-2, 3, (layer2.m, layer2.c, layer2.r, layer2.s))
        out2, stats2 = acc.run_conv(layer2, out1, w2, input_layout=next_layout)
        ref2 = reference_conv(reference_conv(iacts1, w1, layer1), w2, layer2)
        assert np.array_equal(out2, ref2)
        assert stats2.read_slowdown == pytest.approx(1.0)

    def test_instruction_stream_for_layer_is_compact(self):
        """Per-layer BIRRD reconfiguration stays in the kilobyte range
        (the low-cost switching claim)."""
        config = FeatherConfig(array_rows=4, array_cols=8, stab_lines=1024)
        layout = parse_layout("MPQ_Q8")
        planner = RirPlanner(8, layout, {"M": 8, "P": 6, "Q": 6})
        plans = []
        for m in range(8):
            for p in range(6):
                coords = [{"M": m, "P": p, "Q": q} for q in range(6)]
                plans.append(planner.plan_cycle([[i] for i in range(6)], coords))
        stream = generate_instruction_stream(plans, config, route=False)
        assert stream.total_bytes < 4096

    def test_quantized_two_layer_pipeline(self, rng):
        """Int8 requantization between layers keeps values in range."""
        from repro.feather.quantize import QuantizationModule
        layer = ConvLayerSpec("quant", m=4, c=4, h=5, w=5, r=3, s=3, padding=1)
        config = FeatherConfig(array_rows=4, array_cols=4, stab_lines=512)
        acc = FeatherAccelerator(config)
        iacts = rng.integers(-4, 5, (layer.c, layer.h, layer.w))
        weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))
        ref = reference_conv(iacts, weights, layer)
        qm = QuantizationModule.calibrated(ref.ravel().tolist())
        out, _ = acc.run_conv(layer, iacts, weights, quantizer=qm)
        # StaB contents (quantized) stay within int8.
        stored = [acc.stab_pong.peek_word(line, bank)
                  for line in range(8) for bank in range(4)]
        stored = [v for v in stored if v is not None]
        assert stored and all(-128 <= v <= 127 for v in stored)


class TestScalability:
    def test_feather_config_scales(self):
        for rows, cols in ((4, 4), (8, 8), (16, 16), (16, 32)):
            cfg = FeatherConfig(array_rows=rows, array_cols=cols)
            assert cfg.birrd_topology.num_stages >= 3
            assert cfg.stab_spec.banks == cols

    def test_accelerator_with_16_wide_array_runs(self, rng):
        layer = ConvLayerSpec("wide", m=16, c=8, h=6, w=6, r=1, s=1)
        cfg = FeatherConfig(array_rows=4, array_cols=16, stab_lines=512)
        acc = FeatherAccelerator(cfg)  # AW=16: BIRRD falls back to ideal mode
        iacts = rng.integers(-3, 4, (layer.c, layer.h, layer.w))
        weights = rng.integers(-2, 3, (layer.m, layer.c, layer.r, layer.s))
        out, stats = acc.run_conv(layer, iacts, weights)
        assert np.array_equal(out, reference_conv(iacts, weights, layer))
        assert stats.birrd_fallback_cycles > 0
