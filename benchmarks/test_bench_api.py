"""Benchmark: warm-:class:`Session` throughput vs per-call ``search_model``.

The façade's pitch is amortization: a long-lived session keeps the
evaluation cache, the per-configuration mappers and the worker pool warm
across requests, while the legacy per-call entry point rebuilds its state
every call (by design — its per-call counters are part of the record
contract).  This benchmark measures both on the deduplicated ResNet-50
co-search and asserts the session serves repeat traffic measurably
faster — with bit-identical totals.  ``tools/bench_guard.py`` gates CI on
the same comparison.
"""

from __future__ import annotations

import time

import pytest

from repro.api import SearchRequest, Session
from repro.search.engine import search_model
from repro.layoutloop.arch import feather_arch
from repro.workloads.resnet50 import resnet50_layers

MAX_MAPPINGS = 24
REPEATS = 5
#: CI floor; locally the warm session is ~25x faster per request.
MIN_WARM_SPEEDUP = 3.0


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")


@pytest.mark.benchmark(group="api")
def test_warm_session_beats_per_call_search_model(benchmark, best_of):
    layers = resnet50_layers(include_fc=False)
    request = SearchRequest(workloads="resnet50", arch="FEATHER",
                            model="resnet50", max_mappings=MAX_MAPPINGS)

    # Per-call front: every call pays sampling + evaluation again.
    t0 = time.perf_counter()
    per_call = [search_model(feather_arch(), layers, model_name="resnet50",
                             max_mappings=MAX_MAPPINGS)
                for _ in range(REPEATS)]
    per_call_s = (time.perf_counter() - t0) / REPEATS

    with Session(name="bench") as session:
        cold = benchmark.pedantic(session.run, args=(request,),
                                  iterations=1, rounds=1)
        t0 = time.perf_counter()
        warm = [session.run(request) for _ in range(REPEATS)]
        warm_s = (time.perf_counter() - t0) / REPEATS
        described = session.describe()

    _print_header("Warm Session vs per-call search_model "
                  "(ResNet-50 co-search on FEATHER)")
    print(f"{'path':>24}  {'s/request':>10}  {'speedup':>8}")
    print(f"{'per-call search_model':>24}  {per_call_s:10.4f}  "
          f"{'1.00x':>8}")
    print(f"{'Session (cold, 1st)':>24}  "
          f"{cold.elapsed_s:10.4f}  {per_call_s / max(cold.elapsed_s, 1e-9):7.2f}x")
    print(f"{'Session (warm)':>24}  {warm_s:10.4f}  "
          f"{per_call_s / max(warm_s, 1e-9):7.2f}x")
    print(f"session state: {described['evaluation_cache_entries']} cached "
          f"evaluations, {described['executed']} executed / "
          f"{described['requests']} requests")

    # Identity first: a fast wrong answer is a regression.
    for response in (cold, *warm):
        assert response.totals["total_cycles"] == per_call[0].total_cycles
        assert (response.totals["total_energy_pj"]
                == per_call[0].total_energy_pj)
    # All per-call runs agree with each other (determinism).
    assert {c.total_cycles for c in per_call} == {per_call[0].total_cycles}

    assert per_call_s / warm_s >= MIN_WARM_SPEEDUP, (
        f"warm session {per_call_s / warm_s:.2f}x below the "
        f"{MIN_WARM_SPEEDUP:.1f}x floor")


@pytest.mark.benchmark(group="api")
def test_session_cache_reuse_across_distinct_requests(best_of):
    """A *different* request over the same shapes also gets the warm cache
    (the reuse is keyed on structure, not on request identity)."""
    with Session(name="bench-reuse") as session:
        first = session.run(SearchRequest(workloads="resnet50",
                                          arch="FEATHER",
                                          max_mappings=MAX_MAPPINGS))
        assert first.search["cache_misses"] > 0
        relabeled = session.run(SearchRequest(workloads="resnet50",
                                              arch="FEATHER",
                                              model="same-shapes-new-name",
                                              max_mappings=MAX_MAPPINGS))
    assert relabeled.search["cache_misses"] == 0
    assert relabeled.totals == first.totals
    print(f"\ncache reuse across distinct requests: zero evaluation-cache "
          f"misses on the relabeled request "
          f"({first.search['cache_misses']} misses on first contact)")
