"""Benchmark: Fig. 4 — memory efficiency / utilization of mappings M1-M8."""

import pytest

from repro.experiments import fig4


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")



# Practical utilization the paper reports per mapping (Fig. 4 tables).
PAPER_PRACTICAL = {"M1": 0.75, "M2": 0.50, "M3": 0.50, "M4": 1.00,
                   "M5": 1.00, "M6": 0.50, "M7": 0.50, "M8": 1.00}


@pytest.mark.benchmark(group="fig4")
def test_fig4_mapping_tables(benchmark):
    rows = benchmark(fig4.run)

    _print_header("Fig. 4 — (workload, dataflow, layout) mappings on a 4x4 array")
    print(f"{'map':4s} {'dataflow':8s} {'layout':10s} {'lines/cyc':>9s} "
          f"{'slowdown':>8s} {'theo util':>9s} {'pract util':>10s} {'paper':>6s}")
    for row in rows:
        paper = PAPER_PRACTICAL[row.mapping]
        print(f"{row.mapping:4s} {row.dataflow:8s} {row.layout:10s} "
              f"{row.lines_per_cycle:9.1f} {row.slowdown:8.2f} "
              f"{row.theoretical_utilization:9.2f} {row.practical_utilization:10.2f} "
              f"{paper:6.2f}")

    by_id = {r.mapping: r for r in rows}
    # Shape: the paper's concordant picks reach 100%; the discordant ones stall.
    assert by_id["M4"].practical_utilization == pytest.approx(1.0)
    assert by_id["M5"].practical_utilization == pytest.approx(1.0)
    assert by_id["M8"].practical_utilization == pytest.approx(1.0)
    for mid in ("M2", "M3", "M7"):
        assert by_id[mid].practical_utilization <= 0.55
    # Dataflow matters (M1 vs M4) and layout matters (M2 vs M4).
    assert by_id["M4"].practical_utilization > by_id["M1"].practical_utilization
    assert by_id["M4"].practical_utilization > by_id["M2"].practical_utilization
