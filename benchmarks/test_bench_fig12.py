"""Benchmark: Fig. 12 — per-layer throughput/PE on real devices (ResNet-50)."""

import pytest

from repro.experiments import fig12

PAPER_GEOMEAN_SPEEDUP = {"Gemmini": 3.91, "Xilinx DPU": 2.65, "Edge TPU": 4.56}


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")


@pytest.mark.benchmark(group="fig12")
def test_fig12_device_throughput(benchmark):
    result = benchmark(fig12.run)

    _print_header("Fig. 12 — normalised throughput/PE on ResNet-50 (geomean speedups)")
    print(f"{'baseline':12s} {'measured speedup':>17s} {'paper':>7s}")
    for name, speedup in result.speedups().items():
        paper = PAPER_GEOMEAN_SPEEDUP.get(name, float('nan'))
        print(f"{name:12s} {speedup:17.2f} {paper:7.2f}")

    print("\nper-layer normalised throughput (first 10 layers):")
    print(f"{'layer':22s}" + "".join(f"{d:>12s}" for d in result.per_device))
    for i, layer in enumerate(result.layers[:10]):
        print(f"{layer:22s}" + "".join(
            f"{result.per_device[d][i]:12.3f}" for d in result.per_device))

    # Shape: FEATHER beats every baseline in geomean, with Gemmini and the Edge
    # TPU by a wide margin (the paper's 3.91x / 4.56x); the DPU gap is the
    # hardest to reproduce without the real controller (documented in
    # EXPERIMENTS.md) but the ordering must hold.
    speedups = result.speedups()
    assert all(s > 1.0 for s in speedups.values())
    assert speedups["Gemmini"] > 2.0
    assert speedups["Edge TPU"] > 2.0
