"""Benchmark: co-search engine throughput on the deduplicated ResNet-50 search.

Compares four ways of running the Fig. 13-style whole-model co-search on
FEATHER over all ResNet-50 conv layers:

* **naive**      — the pre-engine behaviour: a fresh mapper per layer, no
  shape deduplication, no pruning, no evaluation cache;
* **scalar**     — ``search_model(..., vectorize=False, bulk=False)``: the
  PR-1 engine (dedup + pruning + memoization) on the scalar cost-model
  oracle with the scalar bound path — ``bulk=False`` keeps this row the
  PR-1 reference it claims to be, since the bulk bound pipeline speeds up
  the scalar-evaluation engine itself by ~4x;
* **engine**     — ``search_model`` serial with the vectorized
  ``repro.kernel`` path (compiled layouts, batched evaluation, streaming
  mapping sampling) — the default;
* **engine-par** — ``search_model`` with worker processes.

All four must produce bit-identical totals; the engine must beat the naive
path outright and the vectorized kernel must beat the scalar oracle by at
least 5x at ``workers=1``.  The parallel row is recorded for the
serial-vs-parallel throughput history — on multi-core hosts it adds a
further speedup, on a single-core CI box process startup can dominate, so
no ordering is asserted between the two engine rows.
"""

from __future__ import annotations

import time

import pytest

from repro.layoutloop.arch import feather_arch
from repro.layoutloop.cosearch import LayerChoice, ModelCost, unique_workloads
from repro.layoutloop.mapper import Mapper
from repro.search.engine import search_model
from repro.workloads.resnet50 import resnet50_layers

MAX_MAPPINGS = 24


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")


def _naive_cosearch(layers) -> ModelCost:
    """Per-layer search exactly as the seed repo ran it: no dedup, no
    pruning, no cache reuse across layers, scalar cost model."""
    cost = ModelCost(arch="FEATHER", model="resnet50")
    for layer in layers:
        mapper = Mapper(feather_arch(), max_mappings=MAX_MAPPINGS, prune=False,
                        vectorize=False)
        cost.layer_choices.append(LayerChoice(result=mapper.search(layer),
                                              count=1))
    return cost


@pytest.mark.benchmark(group="search")
def test_search_engine_speedup_resnet50(benchmark, best_of):
    layers = resnet50_layers(include_fc=False)

    t0 = time.perf_counter()
    naive = _naive_cosearch(layers)
    naive_s = time.perf_counter() - t0

    # PR-1 scalar engine path (best of two runs, to de-noise the ratio).
    scalar_s, scalar = best_of(
        lambda: search_model(feather_arch(), layers, model_name="resnet50",
                             max_mappings=MAX_MAPPINGS, vectorize=False,
                             bulk=False))

    engine = benchmark.pedantic(
        search_model, args=(feather_arch(), layers),
        kwargs={"model_name": "resnet50", "max_mappings": MAX_MAPPINGS},
        iterations=1, rounds=1)
    # The >= 5x floor below is an acceptance gate; take the best of three
    # vectorized runs (pedantic + 2) so a single scheduler hiccup on a busy
    # CI box cannot fail it spuriously.
    second_s, _ = best_of(
        lambda: search_model(feather_arch(), layers, model_name="resnet50",
                             max_mappings=MAX_MAPPINGS), rounds=2)
    engine_s = min(engine.search_stats.elapsed_s, second_s)

    t0 = time.perf_counter()
    parallel = search_model(feather_arch(), layers, model_name="resnet50",
                            max_mappings=MAX_MAPPINGS, workers=2)
    parallel_s = time.perf_counter() - t0

    stats = engine.search_stats
    _print_header("Co-search engine throughput — ResNet-50 on FEATHER "
                  f"({len(layers)} layers, {stats.layers_unique} unique, "
                  f"max_mappings={MAX_MAPPINGS})")
    print(f"{'configuration':22s} {'seconds':>8s} {'layers/s':>9s} {'speedup':>8s}")
    for name, seconds in (("naive serial", naive_s),
                          ("scalar engine", scalar_s),
                          ("vectorized engine", engine_s),
                          ("engine workers=2", parallel_s)):
        print(f"{name:22s} {seconds:8.3f} {len(layers) / seconds:9.1f} "
              f"{naive_s / seconds:7.2f}x")
    print(f"kernel speedup (scalar/vectorized at workers=1): "
          f"{scalar_s / engine_s:.2f}x")
    print(f"engine bookkeeping: {stats.evaluations} evaluations, "
          f"{stats.pruned} pruned, cache {stats.cache}")

    # Exactness. Parallel vs serial engine is bit-identical (same per-shape
    # searches, same aggregation order).  The naive path sums duplicates
    # layer by layer instead of once-per-shape times count, so its float
    # totals may differ in the last ulp — compare the winning reports per
    # unique shape exactly and the totals to 1e-12 relative.
    naive_by_shape = {c.result.workload: c.result for c in naive.layer_choices}
    for choice in engine.layer_choices:
        naive_result = naive_by_shape[choice.result.workload]
        assert choice.result.best_report == naive_result.best_report
        assert choice.result.best_mapping == naive_result.best_mapping
    assert engine.total_cycles == naive.total_cycles
    assert engine.total_energy_pj == pytest.approx(naive.total_energy_pj,
                                                   rel=1e-12)
    assert parallel.total_cycles == engine.total_cycles
    assert parallel.total_energy_pj == engine.total_energy_pj

    # The vectorized kernel is exactly equivalent to the scalar oracle:
    # same best (mapping, layout) per shape, same metric values, bit-equal
    # totals.
    assert engine.total_cycles == scalar.total_cycles
    assert engine.total_energy_pj == scalar.total_energy_pj
    for fast, slow in zip(engine.layer_choices, scalar.layer_choices):
        assert fast.result.best_report == slow.result.best_report
        assert fast.result.best_mapping == slow.result.best_mapping
        assert fast.result.best_layout == slow.result.best_layout
        assert fast.result.best_value == slow.result.best_value

    # Throughput: dedup + pruning + memoization must win outright, and the
    # vectorized kernel must deliver >= 5x over the PR-1 scalar path.
    assert engine_s < naive_s, (
        f"engine ({engine_s:.3f}s) not faster than naive ({naive_s:.3f}s)")
    assert scalar_s >= 5.0 * engine_s, (
        f"vectorized kernel ({engine_s:.3f}s) not >= 5x faster than the "
        f"scalar oracle ({scalar_s:.3f}s)")
    assert stats.pruned > 0
    assert stats.layers_unique < stats.layers_total


@pytest.mark.benchmark(group="search")
def test_search_cache_reuse_across_metrics(benchmark):
    """A second search over the same shapes with a different objective reuses
    the evaluation cache (cost reports are metric-independent)."""
    from repro.search import EvaluationCache

    layers = resnet50_layers(include_fc=False)
    shapes = [wl for wl, _ in unique_workloads(layers)]
    cache = EvaluationCache()

    def run_both():
        edp = search_model(feather_arch(), shapes, metric="edp",
                           max_mappings=12, cache=cache)
        latency = search_model(feather_arch(), shapes, metric="latency",
                               max_mappings=12, cache=cache)
        return edp, latency

    edp, latency = benchmark.pedantic(run_both, iterations=1, rounds=1)
    _print_header("Evaluation-cache reuse across objectives (EDP then latency)")
    print(f"EDP pass     : {edp.search_stats}")
    print(f"latency pass : {latency.search_stats}")

    assert latency.search_stats.cache.hits > 0
    assert latency.total_cycles <= edp.total_cycles
