"""Benchmark: co-search engine throughput on the deduplicated ResNet-50 search.

Compares three ways of running the Fig. 13-style whole-model co-search on
FEATHER over all ResNet-50 conv layers:

* **naive**      — the pre-engine behaviour: a fresh mapper per layer, no
  shape deduplication, no pruning, no evaluation cache;
* **engine**     — ``search_model`` serial (dedup + pruning + memoization);
* **engine-par** — ``search_model`` with worker processes.

All three must produce bit-identical totals; the engine must beat the naive
path outright.  The parallel row is recorded for the serial-vs-parallel
throughput history — on multi-core hosts it adds a further speedup, on a
single-core CI box process startup can dominate, so no ordering is asserted
between the two engine rows.
"""

from __future__ import annotations

import time

import pytest

from repro.layoutloop.arch import feather_arch
from repro.layoutloop.cosearch import LayerChoice, ModelCost, unique_workloads
from repro.layoutloop.mapper import Mapper
from repro.search.engine import search_model
from repro.workloads.resnet50 import resnet50_layers

MAX_MAPPINGS = 24


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")


def _naive_cosearch(layers) -> ModelCost:
    """Per-layer search exactly as the seed repo ran it: no dedup, no
    pruning, no cache reuse across layers."""
    cost = ModelCost(arch="FEATHER", model="resnet50")
    for layer in layers:
        mapper = Mapper(feather_arch(), max_mappings=MAX_MAPPINGS, prune=False)
        cost.layer_choices.append(LayerChoice(result=mapper.search(layer),
                                              count=1))
    return cost


@pytest.mark.benchmark(group="search")
def test_search_engine_speedup_resnet50(benchmark):
    layers = resnet50_layers(include_fc=False)

    t0 = time.perf_counter()
    naive = _naive_cosearch(layers)
    naive_s = time.perf_counter() - t0

    engine = benchmark.pedantic(
        search_model, args=(feather_arch(), layers),
        kwargs={"model_name": "resnet50", "max_mappings": MAX_MAPPINGS},
        iterations=1, rounds=1)
    engine_s = engine.search_stats.elapsed_s

    t0 = time.perf_counter()
    parallel = search_model(feather_arch(), layers, model_name="resnet50",
                            max_mappings=MAX_MAPPINGS, workers=2)
    parallel_s = time.perf_counter() - t0

    stats = engine.search_stats
    _print_header("Co-search engine throughput — ResNet-50 on FEATHER "
                  f"({len(layers)} layers, {stats.layers_unique} unique, "
                  f"max_mappings={MAX_MAPPINGS})")
    print(f"{'configuration':18s} {'seconds':>8s} {'layers/s':>9s} {'speedup':>8s}")
    for name, seconds in (("naive serial", naive_s), ("engine serial", engine_s),
                          ("engine workers=2", parallel_s)):
        print(f"{name:18s} {seconds:8.3f} {len(layers) / seconds:9.1f} "
              f"{naive_s / seconds:7.2f}x")
    print(f"engine bookkeeping: {stats.evaluations} evaluations, "
          f"{stats.pruned} pruned, cache {stats.cache}")

    # Exactness. Parallel vs serial engine is bit-identical (same per-shape
    # searches, same aggregation order).  The naive path sums duplicates
    # layer by layer instead of once-per-shape times count, so its float
    # totals may differ in the last ulp — compare the winning reports per
    # unique shape exactly and the totals to 1e-12 relative.
    naive_by_shape = {c.result.workload: c.result for c in naive.layer_choices}
    for choice in engine.layer_choices:
        naive_result = naive_by_shape[choice.result.workload]
        assert choice.result.best_report == naive_result.best_report
        assert choice.result.best_mapping == naive_result.best_mapping
    assert engine.total_cycles == naive.total_cycles
    assert engine.total_energy_pj == pytest.approx(naive.total_energy_pj,
                                                   rel=1e-12)
    assert parallel.total_cycles == engine.total_cycles
    assert parallel.total_energy_pj == engine.total_energy_pj

    # Throughput: dedup + pruning + memoization must win outright.
    assert engine_s < naive_s, (
        f"engine ({engine_s:.3f}s) not faster than naive ({naive_s:.3f}s)")
    assert stats.pruned > 0
    assert stats.layers_unique < stats.layers_total


@pytest.mark.benchmark(group="search")
def test_search_cache_reuse_across_metrics(benchmark):
    """A second search over the same shapes with a different objective reuses
    the evaluation cache (cost reports are metric-independent)."""
    from repro.search import EvaluationCache

    layers = resnet50_layers(include_fc=False)
    shapes = [wl for wl, _ in unique_workloads(layers)]
    cache = EvaluationCache()

    def run_both():
        edp = search_model(feather_arch(), shapes, metric="edp",
                           max_mappings=12, cache=cache)
        latency = search_model(feather_arch(), shapes, metric="latency",
                               max_mappings=12, cache=cache)
        return edp, latency

    edp, latency = benchmark.pedantic(run_both, iterations=1, rounds=1)
    _print_header("Evaluation-cache reuse across objectives (EDP then latency)")
    print(f"EDP pass     : {edp.search_stats}")
    print(f"latency pass : {latency.search_stats}")

    assert latency.search_stats.cache.hits > 0
    assert latency.total_cycles <= edp.total_cycles
