"""Microbenchmarks for the core components: BIRRD routing/evaluation, the
functional accelerator, and the Layoutloop cost model.

These are not paper figures; they document the performance of the simulator
itself so regressions in the library are visible.
"""

import numpy as np
import pytest

from repro.feather.accelerator import FeatherAccelerator
from repro.feather.config import FeatherConfig
from repro.layout.layout import parse_layout
from repro.layoutloop.cost_model import CostModel
from repro.layoutloop.arch import feather_arch
from repro.dataflow.mapping import weight_stationary_mapping
from repro.noc.birrd import BirrdNetwork
from repro.noc.routing import BirrdRouter, contiguous_reduction_requests
from repro.workloads.resnet50 import resnet50_layer


@pytest.mark.benchmark(group="micro-birrd")
def test_birrd_route_reduction_aw8(benchmark):
    router = BirrdRouter(8)
    requests = contiguous_reduction_requests(4, 8, destinations=[5, 2])
    result = benchmark(router.route, requests)
    assert result.routed


@pytest.mark.benchmark(group="micro-birrd")
def test_birrd_route_permutation_aw8(benchmark):
    router = BirrdRouter(8)
    perm = {i: (i * 5 + 2) % 8 for i in range(8)}
    result = benchmark(router.route_permutation, perm)
    assert result.routed


@pytest.mark.benchmark(group="micro-birrd")
def test_birrd_evaluate_aw16(benchmark):
    net = BirrdNetwork(16)
    configs = net.identity_configuration()
    inputs = list(range(16))
    outputs = benchmark(net.evaluate, inputs, configs)
    assert sorted(outputs) == inputs


@pytest.mark.benchmark(group="micro-accelerator")
def test_functional_conv_on_4x8_array(benchmark):
    rng = np.random.default_rng(0)
    from repro.workloads.conv import ConvLayerSpec
    layer = ConvLayerSpec("bench", m=16, c=8, h=8, w=8, r=3, s=3, padding=1)
    iacts = rng.integers(-5, 6, (layer.c, layer.h, layer.w))
    weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))
    acc = FeatherAccelerator(FeatherConfig(array_rows=4, array_cols=8,
                                           stab_lines=1024),
                             route_birrd="never")
    out, stats = benchmark(acc.run_conv, layer, iacts, weights)
    assert stats.macs == layer.macs


@pytest.mark.benchmark(group="micro-costmodel")
def test_cost_model_single_evaluation(benchmark):
    layer = resnet50_layer(14)
    model = CostModel(feather_arch())
    mapping = weight_stationary_mapping(layer, 16, 16)
    layout = parse_layout("HWC_C32")
    report = benchmark(model.evaluate, layer, mapping, layout)
    assert report.total_cycles > 0
