"""Benchmark: Fig. 13 — FEATHER vs SoTA in Layoutloop (latency and pJ/MAC).

Runs the per-layer (dataflow, layout) co-search for BERT, ResNet-50 and
MobileNet-V3 across the nine Table IV architecture configurations and prints
normalised latency / energy next to the paper's reported bars.
"""

import pytest

from repro.experiments import fig13


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")


def _print_chart(series, paper_lat, paper_energy):
    print(f"{'architecture':32s} {'lat (ours)':>10s} {'lat (paper)':>12s} "
          f"{'pJ/MAC (ours)':>14s} {'pJ/MAC (paper)':>15s} {'util':>6s} {'stall%':>7s}")
    for name in series.arch_names():
        print(f"{name:32s} {series.normalized_latency[name]:10.2f} "
              f"{paper_lat.get(name, float('nan')):12.2f} "
              f"{series.normalized_energy_per_mac[name]:14.2f} "
              f"{paper_energy.get(name, float('nan')):15.2f} "
              f"{series.utilization[name]:6.2f} "
              f"{series.stall_fraction[name] * 100:7.1f}")


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("workload", ["bert", "resnet50", "mobilenet_v3"])
def test_fig13_layoutloop_comparison(benchmark, workload):
    series = benchmark.pedantic(
        lambda: fig13.run(workload_names=(workload,), max_mappings=40)[workload],
        iterations=1, rounds=1)

    _print_header(f"Fig. 13 — {workload}: normalised latency and energy vs FEATHER")
    _print_chart(series, fig13.PAPER_LATENCY[workload], fig13.PAPER_ENERGY[workload])

    # Shape checks that mirror the paper's qualitative claims.
    lat = series.normalized_latency
    energy = series.normalized_energy_per_mac
    assert lat["FEATHER"] == pytest.approx(1.0)
    assert energy["FEATHER"] == pytest.approx(1.0)
    # FEATHER runs with zero bank-conflict stalls and no exposed reorder latency.
    assert series.stall_fraction["FEATHER"] == 0.0
    assert series.reorder_fraction["FEATHER"] == 0.0
    # No competitor beats FEATHER on energy, and none beats it on latency by
    # more than a small modelling tolerance.
    assert all(v >= 0.95 for v in energy.values())
    assert min(lat.values()) >= 0.85
    # The fixed-dataflow design (NVDLA-like) trails FEATHER in latency.
    assert lat["NVDLA-like"] > 1.05
    if workload != "bert":
        # Off-chip reordering costs energy relative to RIR.
        assert energy["SIGMA-like (off-chip reorder)"] > 1.1
