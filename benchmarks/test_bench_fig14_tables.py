"""Benchmarks: Fig. 14 (ASIC resources) and Tables I / III / IV / V."""

import pytest

from repro.area.asic import PAPER_TABLE_V
from repro.experiments import fig14, tables


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")


@pytest.mark.benchmark(group="fig14")
def test_fig14a_reduction_network_scaling(benchmark):
    rows = benchmark(fig14.run_fig14a)
    _print_header("Fig. 14a — reduction network area/power vs input count")
    print(f"{'inputs':>6s} {'ART um2':>12s} {'FAN um2':>12s} {'BIRRD um2':>12s} "
          f"{'BIRRD/FAN':>10s} {'BIRRD/ART':>10s}")
    for row in rows:
        print(f"{row.inputs:6d} {row.art_area_um2:12.0f} {row.fan_area_um2:12.0f} "
              f"{row.birrd_area_um2:12.0f} {row.birrd_over_fan_area:10.2f} "
              f"{row.birrd_over_art_area:10.2f}")

    # Paper: BIRRD ~1.43x FAN and ~2.21x ART in area at equal input count,
    # with monotone growth in size.
    for row in rows:
        assert 1.1 < row.birrd_over_fan_area < 1.9
        assert 1.7 < row.birrd_over_art_area < 2.9
    areas = [r.birrd_area_um2 for r in rows]
    assert areas == sorted(areas)


@pytest.mark.benchmark(group="fig14")
def test_fig14b_accelerator_area_breakdown(benchmark):
    result = benchmark(fig14.run_fig14b)
    _print_header("Fig. 14b — accelerator area breakdown at 256 PEs")
    for name, breakdown in result.breakdowns.items():
        parts = ", ".join(f"{k}={v / 1e3:.0f}k" for k, v in breakdown.components_um2)
        print(f"{name:18s} total {breakdown.total_area_mm2:6.3f} mm2  ({parts})")
    print(f"FEATHER / Eyeriss-like area : {result.feather_over_eyeriss:.2f}x (paper ~1.06x)")
    print(f"SIGMA / FEATHER area        : {result.sigma_over_feather:.2f}x (paper ~2.4x)")
    print(f"BIRRD share of FEATHER die  : {result.birrd_area_fraction * 100:.1f}% (paper ~4%)")

    assert 0.95 < result.feather_over_eyeriss < 1.3
    assert result.sigma_over_feather > 1.8
    assert result.birrd_area_fraction < 0.10


@pytest.mark.benchmark(group="tables")
def test_tables_i_iii_iv(benchmark):
    rows = benchmark(lambda: (tables.table_i(), tables.table_iii(), tables.table_iv()))
    t1, t3, t4 = rows
    _print_header("Table I — dataflow switching / layout reorder support")
    for row in t1:
        print(f"{row['work']:12s} switching={str(row['dataflow_switching']):5s} "
              f"reorder={row['layout_reorder']:10s} impl={row['implementation']}")
    _print_header("Table III — on-chip reorder patterns")
    for row in t3:
        print(f"{row['work']:10s} dataflow={row['dataflow_flexibility']:5s} "
              f"pattern={row['reorder_pattern']:24s} impl={row['implementation']}")
    _print_header("Table IV — Layoutloop evaluation setup")
    for row in t4:
        print(f"{row['name']:32s} {row['pes']:4d} PEs  layout={row['layout']:10s} "
              f"dataflow={row['dataflow']:5s} reorder={row['reorder_implementation']}")

    assert t1[-1]["work"] == "FEATHER" and t1[-1]["implementation"] == "RIR"
    assert t3[-1]["reorder_pattern"] == "arbitrary"
    assert len(t4) == 9


@pytest.mark.benchmark(group="tables")
def test_table_v_post_pnr_scaling(benchmark):
    rows = benchmark(tables.table_v_rows)
    _print_header("Table V — FEATHER post-PnR area/power across shapes (model vs paper)")
    print(f"{'shape':>8s} {'model um2':>14s} {'paper um2':>14s} {'model mW':>10s} "
          f"{'paper mW':>10s}")
    for row in sorted(rows, key=lambda r: r['model_area_um2']):
        print(f"{row['shape']:>8s} {row['model_area_um2']:14.0f} "
              f"{row.get('paper_area_um2', float('nan')):14.0f} "
              f"{row['model_power_mw']:10.1f} {row.get('paper_power_mw', float('nan')):10.1f}")

    # Shape: strictly increasing with PE count and within an order of magnitude
    # of the paper's post-PnR numbers for every reported shape.
    by_shape = {r["shape"]: r for r in rows}
    order = ["4x4", "8x8", "16x16", "16x32", "32x32", "64x64", "64x128"]
    areas = [by_shape[s]["model_area_um2"] for s in order]
    assert areas == sorted(areas)
    for row in rows:
        if "paper_area_um2" in row:
            assert 0.1 < row["model_area_um2"] / row["paper_area_um2"] < 10.0
