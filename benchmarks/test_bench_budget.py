"""Benchmark: budgeted search policies vs the exhaustive co-search.

The budgeted-search pitch is "same winners, a fraction of the full-fidelity
evaluations": ``halving`` orders the candidate universe by the admissible
lower bound and stops once the bound proves the incumbent optimal;
``evolutionary`` (warm-started from memoized per-shape winners, the repeat-
session case) refines from the previous optimum under a hard budget.  This
benchmark runs all three policies over the deduplicated ResNet-50 co-search
on FEATHER, asserts winner identity, and records the trajectory —
evaluation counts, wall time, identity — in ``BENCH_search.json`` at the
repo root (the committed datapoints CI's ``bench_guard --gates budget``
mirrors).

Every recorded run also carries a ``compiled`` entry stating whether the
numba JIT was importable; on the opt-in compiled leg
(``REPRO_BENCH_COMPILE=1``, CI's numba job) the exhaustive co-search is
additionally timed with ``compile=True`` and the jit-vs-numpy wall-time
ratio is recorded — with winner identity to the numpy path asserted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

import repro
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.mapper import Mapper
from repro.search.budget import evolutionary_search, halving_search
from repro.search.signatures import workload_signature
from repro.workloads.resnet50 import resnet50_layers

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_search.json"
MAX_MAPPINGS = 24
#: Warm-started evolutionary budget: winner + one refinement candidate per
#: shape (7 layouts each).  Locally 3.13x; the gate floor is 3.0x.
EVOLUTIONARY_BUDGET = 14
MIN_WARM_REDUCTION = 3.0


def _unique_shapes():
    unique = {}
    for workload in resnet50_layers(include_fc=False):
        unique.setdefault(workload_signature(workload), workload)
    return list(unique.values())


def _identical(result, winner) -> bool:
    return (result.best_report.total_cycles == winner.best_report.total_cycles
            and result.best_report.total_energy_pj
            == winner.best_report.total_energy_pj
            and result.best_mapping.name == winner.best_mapping.name
            and result.best_layout.name == winner.best_layout.name)


def _record_run(policies, compiled) -> None:
    history = {"benchmark": "budgeted-search", "runs": []}
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            pass
    history.setdefault("runs", []).append({
        "repro_version": repro.__version__,
        "cpu_count": os.cpu_count(),
        "model": "resnet50",
        "arch": "FEATHER",
        "max_mappings": MAX_MAPPINGS,
        "policies": policies,
        "compiled": compiled,
    })
    history["runs"] = history["runs"][-50:]  # bounded trajectory
    BENCH_PATH.write_text(json.dumps(history, indent=2, sort_keys=True)
                          + "\n")


def _compiled_entry(best_of, shapes, arch, winners):
    """The compiled-kernel datapoint for the recorded run.

    Always records whether numba was importable (so the trajectory is
    honest about which runs exercised the JIT at all).  The jit-vs-numpy
    timing ratio is only measured on the opt-in leg
    (``REPRO_BENCH_COMPILE=1``, CI's numba job) — and there winner
    identity with the numpy path is asserted, not just recorded.
    """
    from repro.kernel import NUMBA_AVAILABLE

    entry = {"numba_available": NUMBA_AVAILABLE}
    if not (NUMBA_AVAILABLE and os.environ.get("REPRO_BENCH_COMPILE")):
        return entry

    def run_compiled():
        mapper = Mapper(arch, max_mappings=MAX_MAPPINGS, seed=0,
                        compile=True)
        return [mapper.search(workload) for workload in shapes]

    def run_numpy():
        mapper = Mapper(arch, max_mappings=MAX_MAPPINGS, seed=0)
        return [mapper.search(workload) for workload in shapes]

    compiled_s, compiled = best_of(run_compiled, 3)
    numpy_s, _ = best_of(run_numpy, 3)
    identical = all(_identical(r, w) for r, w in zip(compiled, winners))
    assert identical, "compiled-kernel winner drifted from the numpy path"
    entry.update({
        "jit_vs_numpy": round(numpy_s / compiled_s, 3),
        "compiled_wall_s": round(compiled_s, 4),
        "numpy_wall_s": round(numpy_s, 4),
        "winner_identical": identical,
    })
    return entry


@pytest.mark.benchmark(group="budget")
def test_budgeted_policies_reach_exhaustive_winner(best_of):
    shapes = _unique_shapes()
    arch = feather_arch()

    def run_exhaustive():
        mapper = Mapper(arch, max_mappings=MAX_MAPPINGS, seed=0)
        return mapper, [mapper.search(workload) for workload in shapes]

    def run_halving():
        mapper = Mapper(arch, max_mappings=MAX_MAPPINGS, seed=0)
        return [halving_search(mapper, workload) for workload in shapes]

    exhaustive_s, (exhaustive_mapper, winners) = best_of(run_exhaustive, 3)
    halving_s, halved = best_of(run_halving, 3)

    def run_warm_evolutionary():
        mapper = Mapper(arch, max_mappings=MAX_MAPPINGS, seed=0)
        mapper._cache.update(exhaustive_mapper._cache)  # repeat-session memo
        return [evolutionary_search(mapper, workload,
                                    budget=EVOLUTIONARY_BUDGET)
                for workload in shapes]

    warm_s, warm = best_of(run_warm_evolutionary, 3)

    baseline = sum(r.evaluated for r in winners)
    rows = {
        "exhaustive": (exhaustive_s, baseline, True),
        "halving": (halving_s, sum(r.evaluated for r in halved),
                    all(_identical(r, w) for r, w in zip(halved, winners))),
        "evolutionary-warm": (warm_s, sum(r.evaluated for r in warm),
                              all(_identical(r, w)
                                  for r, w in zip(warm, winners))),
    }

    title = (f"Budgeted search policies (ResNet-50 on FEATHER, "
             f"{len(shapes)} unique shapes)")
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(f"{'policy':>20}  {'wall s':>8}  {'evaluations':>11}  "
          f"{'reduction':>9}  {'identical':>9}")
    policies = {}
    for name, (seconds, evaluations, identical) in rows.items():
        print(f"{name:>20}  {seconds:8.3f}  {evaluations:11d}  "
              f"{baseline / evaluations:8.2f}x  {str(identical):>9}")
        policies[name] = {
            "wall_s": round(seconds, 4),
            "evaluations": evaluations,
            "reduction": round(baseline / evaluations, 3),
            "winner_identical": identical,
        }
    compiled = _compiled_entry(best_of, shapes, arch, winners)
    _record_run(policies, compiled)
    print(f"recorded in {BENCH_PATH.name} (compiled: {compiled})")

    # Identity is the contract: a cheap wrong winner is a regression.
    assert rows["halving"][2], "halving winner drifted from exhaustive"
    assert rows["evolutionary-warm"][2], (
        "warm evolutionary winner drifted from exhaustive")
    warm_reduction = baseline / rows["evolutionary-warm"][1]
    assert warm_reduction >= MIN_WARM_REDUCTION, (
        f"warm evolutionary reduction {warm_reduction:.2f}x below the "
        f"{MIN_WARM_REDUCTION:.1f}x floor")
    # The bound-stop must prune meaningfully even cold (no identity risk:
    # its winner is provably exhaustive) — locally 2.72x.
    assert baseline / rows["halving"][1] >= 2.0
