"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures, prints the
measured rows (and, where the paper reports numbers, the paper's values next
to them), and asserts the qualitative shape — who wins, by roughly what
factor, where crossovers fall.  Run with ``pytest benchmarks/ --benchmark-only``
(add ``-s`` to see the printed tables).
"""

from __future__ import annotations
