"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures, prints the
measured rows (and, where the paper reports numbers, the paper's values next
to them), and asserts the qualitative shape — who wins, by roughly what
factor, where crossovers fall.  Run with ``pytest benchmarks/ --benchmark-only``
(add ``-s`` to see the printed tables).

The shared best-of-N timing helper lives in ``benchmarks/_timing.py``
(pytest-free, so ``tools/bench_guard.py`` can load it too); this conftest
injects it into the benchmark tests as the ``best_of`` fixture.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _timing import best_of as _best_of  # noqa: E402


@pytest.fixture(name="best_of")
def best_of_fixture() -> Callable:
    """The shared :func:`benchmarks._timing.best_of` helper."""
    return _best_of
