"""Microbenchmark: scalar vs vectorized cost-model evaluation.

Times the innermost co-search kernel — scoring one mapping under every
candidate layout — both ways over the deduplicated ResNet-50 conv shapes:

* **scalar** — one ``CostModel.evaluate`` call per (mapping, layout), the
  PR-1 path (dict-per-coordinate addressing, per-cycle Python concordance);
* **batched** — one ``CostModel.evaluate_mapping_batch`` call per mapping
  (compiled layouts + ``(cycles, lanes, ndims)`` footprints +
  ``analyze_concordance_batch``).

Two architectures are measured: SIGMA with off-chip reordering (the
concordance analysis dominates) and FEATHER/RIR (concordance is skipped, so
the win is amortizing the mapping-level quantities).  Both must produce
identical reports; the batched path must be measurably faster on each.
``tools/bench_guard.py`` runs the same comparison as a CI gate.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import sigma_like
from repro.dataflow.space import MappingSpace
from repro.layout.library import conv_layout_library
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.cosearch import unique_workloads
from repro.layoutloop.cost_model import CostModel
from repro.workloads.resnet50 import resnet50_layers

MAPPINGS_PER_SHAPE = 8


def _workbench():
    shapes = [wl for wl, _ in
              unique_workloads(resnet50_layers(include_fc=False))]
    layouts = conv_layout_library()
    cases = []
    for shape in shapes:
        space = MappingSpace(shape, 16, 16)
        for mapping in space.sample(MAPPINGS_PER_SHAPE, seed=0):
            cases.append((shape, mapping))
    return cases, layouts


def _run_scalar(model: CostModel, cases, layouts):
    return [[model.evaluate(wl, mapping, layout) for layout in layouts]
            for wl, mapping in cases]


def _run_batched(model: CostModel, cases, layouts):
    return [model.evaluate_mapping_batch(wl, mapping, layouts)
            for wl, mapping in cases]


@pytest.mark.benchmark(group="cost-model")
@pytest.mark.parametrize("arch_fn,min_speedup", [
    pytest.param(lambda: sigma_like(reorder="offchip"), 3.0, id="offchip"),
    pytest.param(feather_arch, 1.2, id="feather-rir"),
])
def test_batched_evaluate_speedup(benchmark, arch_fn, min_speedup, best_of):
    arch = arch_fn()
    model = CostModel(arch)
    cases, layouts = _workbench()
    evals = len(cases) * len(layouts)

    scalar_s, scalar_reports = best_of(lambda: _run_scalar(model, cases, layouts))
    batched_s, batched_reports = benchmark.pedantic(
        lambda: best_of(lambda: _run_batched(model, cases, layouts)),
        iterations=1, rounds=1)

    title = (f"Cost-model kernel — {arch.name}: {len(cases)} (shape, mapping) "
             f"cases x {len(layouts)} layouts = {evals} evaluations")
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")
    print(f"{'path':10s} {'seconds':>8s} {'us/eval':>9s} {'evals/s':>10s}")
    for name, seconds in (("scalar", scalar_s), ("batched", batched_s)):
        print(f"{name:10s} {seconds:8.3f} {seconds / evals * 1e6:9.1f} "
              f"{evals / seconds:10.0f}")
    print(f"speedup: {scalar_s / batched_s:.2f}x")

    assert batched_reports == scalar_reports  # bit-identical, report by report
    assert scalar_s >= min_speedup * batched_s, (
        f"batched path ({batched_s:.3f}s) not measurably faster than scalar "
        f"({scalar_s:.3f}s) on {arch.name}")
