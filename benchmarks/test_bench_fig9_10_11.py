"""Benchmarks: Fig. 9 (NEST walk-through), Fig. 10 (FEATHER vs systolic array)
and Fig. 11 (RIR layout-switch walk-through)."""

import pytest

from repro.experiments import fig9, fig10, fig11


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")


@pytest.mark.benchmark(group="fig9")
def test_fig9_nest_walkthrough(benchmark):
    result = benchmark(fig9.run)
    _print_header("Fig. 9 — NEST walk-through (4x4 array, C=2, M=16 conv)")
    print(f"functionally correct: {result.correct}")
    print(f"cycles: {result.cycles:.0f}, utilization: {result.utilization:.2f}")
    print(f"spatial reduction group: {result.spatial_reduction_group}:1 per output, "
          f"row drains: {result.row_drains}")
    print(f"weight-load cycles hidden behind compute: {result.weight_load_cycles_hidden}")

    assert result.correct
    assert result.spatial_reduction_group >= 2
    assert result.weight_load_cycles_hidden == 16


@pytest.mark.benchmark(group="fig10")
def test_fig10_feather_vs_systolic(benchmark):
    rows = benchmark.pedantic(fig10.run, kwargs={"max_mappings": 200},
                              iterations=1, rounds=1)
    _print_header("Fig. 10 — utilization on skewed GEMMs (4x4 array)")
    print(f"{'workload':12s} {'M':>3s} {'K':>3s} {'N':>3s} "
          f"{'systolic':>9s} {'FEATHER':>8s}")
    for row in rows:
        print(f"{row.workload:12s} {row.m:3d} {row.k:3d} {row.n:3d} "
              f"{row.systolic_utilization:9.2f} {row.feather_utilization:8.2f}")

    by_name = {r.workload: r for r in rows}
    # Paper: both designs saturate the regular GEMM; FEATHER wins on skew.
    assert by_name["workload_A"].systolic_utilization == pytest.approx(1.0)
    assert by_name["workload_A"].feather_utilization == pytest.approx(1.0)
    for name in ("workload_B", "workload_C", "workload_D"):
        assert by_name[name].feather_utilization >= by_name[name].systolic_utilization
    assert by_name["workload_D"].feather_advantage > 2.0


@pytest.mark.benchmark(group="fig11")
def test_fig11_rir_walkthrough(benchmark):
    result = benchmark(fig11.run)
    _print_header("Fig. 11 — RIR: channel-last iActs -> row-major oActs")
    print(f"functionally correct: {result.correct}")
    print(f"input layout {result.input_layout}, output layout {result.output_layout}")
    print(f"read slowdown: {result.read_slowdown:.2f}, "
          f"write serialization: {result.write_serialization:.2f}")
    print(f"writes per bank: {result.writes_per_bank}")
    print("first 8 oAct writes (line, bank):", result.write_trace[:8])

    assert result.correct
    assert result.conflict_free
    counts = list(result.writes_per_bank.values())
    assert max(counts) == min(counts)  # perfectly balanced across StaB banks
