"""Benchmark: Fig. 2 — theory/practice latency gap on a 16x16 array."""

import pytest

from repro.experiments import fig2


def _print_header(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")




@pytest.mark.benchmark(group="fig2")
def test_fig2_theory_practice_gap(benchmark):
    results = benchmark.pedantic(
        fig2.run, kwargs={"max_mappings": 40, "full_model_layers": 10},
        iterations=1, rounds=1)

    _print_header("Fig. 2 — latency of dataflow/layout policies (normalised to FEATHER)")
    print(f"{'workload':30s} {'fixed':>8s} {'theory':>8s} {'practice':>9s} "
          f"{'feather':>8s} {'worst gap':>10s}")
    for model, rows in results.items():
        for row in rows:
            norm = row.normalized()
            print(f"{row.workload:30s} {norm['fixed']:8.2f} {norm['theory']:8.2f} "
                  f"{norm['practice']:9.2f} {1.0:8.2f} {row.practice_gap:9.1f}x")

    # Shape checks (paper: flexible dataflow cuts the fixed policy's latency by
    # ~63% overall, and ignoring layout opens a multi-x practice gap).
    for model, rows in results.items():
        full = rows[-1]
        assert full.feather_vs_fixed > 0.3
        assert full.practice_gap > 2.0
        assert full.feather_latency <= full.fixed_latency
