"""Shared best-of-N timing helper (pytest-free).

``benchmarks/conftest.py`` (the benchmark suite) and ``tools/bench_guard.py``
(a standalone CLI gate) both compare two implementations by wall clock and
gate on the ratio; they must de-noise measurements the same way, so the
loop lives here once — importable by the conftest and loadable by file
path from the guard without dragging in pytest.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


def best_of(fn: Callable[[], Any], rounds: int = 2) -> Tuple[float, Any]:
    """``(best wall-clock seconds, last result)`` over ``rounds`` runs.

    Taking the minimum discards scheduler noise and first-run warmup (cache
    population, lazy imports), which is what a speedup *ratio* should be
    computed from; the result is returned so callers can assert correctness
    on exactly what was timed.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result
