#!/usr/bin/env python3
"""Layout/bank-conflict analysis for one layer (the Fig. 2 / Fig. 4 story).

Takes ResNet-50 layer 1, searches the best layout-blind dataflow, then shows
what that dataflow actually costs under each of the paper's seven candidate
layouts on an accelerator *without* reordering support, and finally what
FEATHER achieves by co-switching the layout.

Run with:  python examples/layout_conflict_analysis.py [layer_index]
"""

import sys

from repro.baselines import sigma_like
from repro.layout import conv_layout_library
from repro.layoutloop import CostModel, feather_arch
from repro.search import SearchEngine
from repro.workloads import resnet50_layer


def main() -> None:
    index = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    layer = resnet50_layer(index)
    print(f"Layer: {layer}\n")

    # One engine serves both searches below: the layout-blind and the
    # co-switched run share memoized cost-model evaluations.
    engine = SearchEngine(feather_arch(), metric="latency", max_mappings=120)

    # 1. Layout-blind best dataflow (what a conventional mapper reports).
    theory = engine.search_layer(layer, layouts=[conv_layout_library()[0]])
    mapping = theory.best_mapping
    print(f"Layout-blind best dataflow : {mapping.describe()}")
    print(f"Theoretical latency        : {theory.best_report.total_cycles:,.0f} cycles\n")

    # 2. That dataflow under each real layout, no reordering support.
    fixed_model = CostModel(sigma_like(layout="HWC_C32", reorder="none"))
    print(f"{'layout':14s} {'lines/conflict slowdown':>24s} {'latency (cycles)':>18s} "
          f"{'vs theory':>10s}")
    for layout in conv_layout_library():
        report = fixed_model.evaluate(layer, mapping, layout)
        print(f"{layout.name:14s} {report.slowdown:24.2f} "
              f"{report.total_cycles:18,.0f} "
              f"{report.total_cycles / theory.best_report.total_cycles:9.1f}x")

    # 3. FEATHER: co-switch (dataflow, layout), reordering rides the reduction.
    feather = engine.search_layer(layer)
    print(f"\nFEATHER co-switched choice : {feather.best_mapping.describe()}")
    print(f"  layout {feather.best_layout.name}, "
          f"latency {feather.best_report.total_cycles:,.0f} cycles, "
          f"slowdown {feather.best_report.slowdown:.2f}, "
          f"energy {feather.best_report.energy_per_mac_pj:.2f} pJ/MAC")


if __name__ == "__main__":
    main()
