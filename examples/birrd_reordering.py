#!/usr/bin/env python3
"""BIRRD deep dive: topology, reduction routing and arbitrary reordering.

Walks through the Butterfly Interconnect for Reduction and Reordering in
Dataflows at the switch level:

1. prints the Alg. 1 inter-stage wiring of an 8-input BIRRD,
2. routes the Fig. 9-style case (two reduction groups whose results are
   scattered to arbitrary output banks), shows the per-stage switch settings,
   and verifies the sums numerically,
3. routes a pure reordering (the "Workload A — change oAct layout" case of
   Fig. 10) where no reduction happens and BIRRD acts as a permutation
   network.

Run with:  python examples/birrd_reordering.py
"""

from repro.noc import (
    BirrdNetwork,
    BirrdRouter,
    BirrdTopology,
    ReductionRequest,
    birrd_area_power,
)

AW = 8


def show_topology() -> None:
    topo = BirrdTopology(AW)
    print(f"{AW}-input BIRRD: {topo.num_stages} stages x "
          f"{topo.switches_per_stage} Eggs = {topo.num_switches} switches, "
          f"{topo.config_bits_per_cycle} config bits per cycle")
    print("inter-stage wiring (output port -> next-stage input port):")
    for stage, row in enumerate(topo.connectivity()):
        print(f"  stage {stage}: {row}")
    model = birrd_area_power(AW)
    print(f"area model: {model.adders} adders, {model.area_um2:,.0f} um2, "
          f"{model.power_mw:.1f} mW\n")


def reduction_with_reordering() -> None:
    print("Reduction + reordering: sum inputs 0-3 into bank 6, inputs 4-7 into bank 1")
    requests = [ReductionRequest(output_port=6, inputs=(0, 1, 2, 3)),
                ReductionRequest(output_port=1, inputs=(4, 5, 6, 7))]
    router = BirrdRouter(AW)
    result = router.route(requests)
    assert result.routed
    print(f"routed after exploring {result.nodes_explored} states")
    for stage, configs in enumerate(result.configs):
        print(f"  stage {stage}: " + "  ".join(cfg.value for cfg in configs))

    net = BirrdNetwork(AW)
    values = [10, 20, 30, 40, 1, 2, 3, 4]
    outputs = net.evaluate(values, result.configs)
    print(f"inputs : {values}")
    print(f"outputs: {outputs}")
    assert outputs[6] == 100 and outputs[1] == 10
    print("bank 6 holds 10+20+30+40 = 100, bank 1 holds 1+2+3+4 = 10  -> OK\n")


def pure_reordering() -> None:
    print("Pure reordering (no reduction): reverse the 8 results across banks")
    router = BirrdRouter(AW)
    permutation = {i: AW - 1 - i for i in range(AW)}
    result = router.route_permutation(permutation)
    assert result.routed
    net = BirrdNetwork(AW)
    values = [100 + i for i in range(AW)]
    outputs = net.evaluate(values, result.configs)
    print(f"inputs : {values}")
    print(f"outputs: {outputs}")
    assert outputs == list(reversed(values))
    print("results landed in reversed bank order -> OK")


def main() -> None:
    show_topology()
    reduction_with_reordering()
    pure_reordering()


if __name__ == "__main__":
    main()
