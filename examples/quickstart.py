#!/usr/bin/env python3
"""Quickstart: run one convolution layer on FEATHER and inspect RIR in action.

This example builds a small FEATHER instance (4x8 PEs, so the BIRRD is an
8-input network that is routed at the switch level), runs a convolution whose
iActs are stored channel-last while its oActs must come out row-major for the
next layer, and verifies that

* the result is numerically exact (checked against a numpy reference),
* the layout switch costs zero extra cycles (no read bank conflicts, no write
  serialization) — the paper's reorder-in-reduction claim.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.feather import FeatherAccelerator, FeatherConfig, reference_conv
from repro.layout import parse_layout
from repro.workloads import ConvLayerSpec


def main() -> None:
    layer = ConvLayerSpec("quickstart_conv", m=8, c=8, h=8, w=8, r=3, s=3,
                          stride=1, padding=1)
    print(f"Layer: {layer}")

    rng = np.random.default_rng(0)
    iacts = rng.integers(-8, 8, (layer.c, layer.h, layer.w))
    weights = rng.integers(-4, 4, (layer.m, layer.c, layer.r, layer.s))

    config = FeatherConfig(array_rows=4, array_cols=8, stab_lines=2048)
    accelerator = FeatherAccelerator(config, route_birrd="auto")

    input_layout = parse_layout("HWC_C8")    # channel-last iActs in StaB Ping
    output_layout = parse_layout("MPQ_Q8")   # row-major oActs for the next layer

    outputs, stats = accelerator.run_conv(
        layer, iacts, weights,
        input_layout=input_layout, output_layout=output_layout)

    reference = reference_conv(iacts, weights, layer)
    assert np.array_equal(outputs, reference), "FEATHER result mismatch!"

    print(f"\nFunctional check      : PASS (matches numpy reference)")
    print(f"Array                 : {config.array_rows}x{config.array_cols} PEs, "
          f"BIRRD with {config.birrd_topology.num_stages} stages")
    print(f"Input layout          : {stats.input_layout}")
    print(f"Output layout (RIR)   : {stats.output_layout}")
    print(f"Cycles                : {stats.cycles:.0f}")
    print(f"Utilization           : {stats.utilization:.1%}")
    print(f"Read slowdown         : {stats.read_slowdown:.2f}x "
          f"(1.00 = no bank conflicts)")
    print(f"Write serialization   : {stats.write_serialization:.2f}x "
          f"(1.00 = layout switch is free)")
    print(f"BIRRD cycles routed   : {stats.birrd_routed_cycles}/{stats.birrd_cycles} "
          f"at the switch level")


if __name__ == "__main__":
    main()
