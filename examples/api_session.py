"""One Session, every verb: eval + search + sweep + submit through repro.api.

The story: a long-lived :class:`repro.api.Session` is the front door to
the whole reproduction.  Requests are plain, JSON-round-trippable
dataclasses — the same payloads ``python -m repro.serve`` accepts over
HTTP — and the session amortizes its evaluation cache, per-configuration
mappers and worker pool across them, so repeat traffic gets cheaper the
longer the session lives.

Run me:  PYTHONPATH=src python examples/api_session.py
"""

from repro.api import EvalRequest, SearchRequest, Session, SweepRequest

with Session(name="example") as session:
    # -- 1. Price one cell: an EvalRequest is a (workload, mapping, layout)
    #       triple on one architecture, priced by one backend.
    evald = session.run(EvalRequest(workload="fig10_gemms#0",
                                    arch="FEATHER-4x4", layout="MK_K32"))
    report = evald.report
    print(f"eval    : {report['workload']} under {report['layout']}: "
          f"{report['total_cycles']:.0f} cycles, "
          f"{report['energy_per_mac_pj']:.2f} pJ/MAC "
          f"(key {evald.key[:12]})")

    # -- 2. Co-search a model head: the request round-trips through JSON
    #       (what a wire client would send) before running.
    request = SearchRequest.from_json(SearchRequest(
        workloads="resnet50[:4]", arch="FEATHER", model="resnet50-head",
        max_mappings=20).to_json())
    search = session.run(request)
    print(f"search  : {search.model} on {search.arch}: "
          f"{search.totals['total_cycles']:.4g} cycles, "
          f"{search.totals['energy_per_mac_pj']:.2f} pJ/MAC, "
          f"{len(search.layers)} unique layers")

    # -- 3. Same request again: served from the warm session (zero
    #       evaluation-cache misses — the whole point of a Session).
    warm = session.run(request)
    print(f"warm    : identical totals={warm.totals == search.totals}, "
          f"cache misses={warm.search['cache_misses']}")

    # -- 4. submit() returns futures; identical in-flight requests
    #       coalesce to one execution and share the response object (a
    #       whole-model search is slow enough that the second submit lands
    #       while the first is still running).
    futures = [session.submit(SearchRequest(workloads="mobilenet_v3",
                                            arch="FEATHER",
                                            model="mobilenet_v3",
                                            max_mappings=16))
               for _ in range(2)]
    responses = [f.result() for f in futures]
    print(f"submit  : 2 futures, shared future={futures[0] is futures[1]}, "
          f"shared response={responses[0] is responses[1]}")

    # -- 5. A sweep request runs scenario cells (here: one smoke cell of
    #       the built-in matrix) through the same session.
    sweep = session.run(SweepRequest(filter="smoke-fig10"))
    record = sweep.records[0]
    print(f"sweep   : {record['scenario']}: "
          f"{record['totals']['total_cycles']:.4g} cycles "
          f"(backend {record['backend']}, cached={sweep.cached[0]})")

    stats = session.describe()
    print(f"session : {stats['requests']} requests, {stats['executed']} "
          f"executed, {stats['coalesced']} coalesced, "
          f"{stats['evaluation_cache_entries']} cached evaluations")
