#!/usr/bin/env python3
"""End-to-end mini-CNN inference on FEATHER with per-layer layout co-switching.

Builds a small quantized CNN (conv -> BN -> ReLU -> maxpool -> conv -> ReLU ->
depthwise conv), runs it layer by layer on the FEATHER functional model with
RIR writing every layer's activations in the next layer's preferred layout,
and checks the result against a numpy reference.

Run with:  python examples/mini_cnn_inference.py
"""

import numpy as np

from repro.feather import (
    ConvStage,
    FeatherConfig,
    IntegerBatchNorm,
    ModelRunner,
    PoolStage,
    reference_model,
)
from repro.workloads import ConvLayerSpec


def build_network(rng) -> list:
    conv1 = ConvLayerSpec("conv1", m=8, c=3, h=16, w=16, r=3, s=3, padding=1)
    conv2 = ConvLayerSpec("conv2", m=16, c=8, h=8, w=8, r=3, s=3, padding=1)
    dwconv = ConvLayerSpec("dwconv", m=16, c=16, h=8, w=8, r=3, s=3, padding=1,
                           groups=16)
    return [
        ConvStage(conv1, rng.integers(-3, 4, (8, 3, 3, 3)),
                  batch_norm=IntegerBatchNorm.identity(8), apply_relu=True),
        PoolStage(kernel=2),
        ConvStage(conv2, rng.integers(-3, 4, (16, 8, 3, 3)), apply_relu=True),
        ConvStage(dwconv, rng.integers(-2, 3, (16, 1, 3, 3)), apply_relu=True),
    ]


def main() -> None:
    rng = np.random.default_rng(7)
    stages = build_network(rng)
    iacts = rng.integers(-8, 8, (3, 16, 16))

    runner = ModelRunner(FeatherConfig(array_rows=4, array_cols=8, stab_lines=8192))
    result = runner.run(stages, iacts)
    reference = reference_model(stages, iacts)

    assert np.array_equal(result.outputs, reference), "mismatch vs numpy reference"

    print("Mini-CNN inference on FEATHER")
    print(f"  output tensor shape : {result.outputs.shape}")
    print(f"  functional check    : PASS (exact match with numpy)")
    print(f"  total cycles        : {result.total_cycles:,.0f}")
    print(f"  total MACs          : {result.total_stats.macs:,}")
    print(f"  layouts co-switched : {result.layouts_used}")
    print("\nper-layer statistics:")
    print(f"{'layer':10s} {'cycles':>10s} {'util':>7s} {'read slowdown':>14s} "
          f"{'write serial':>13s}")
    for name, stats in result.per_layer_stats:
        print(f"{name:10s} {stats.cycles:10.0f} {stats.utilization:7.2f} "
              f"{stats.read_slowdown:14.2f} {stats.write_serialization:13.2f}")


if __name__ == "__main__":
    main()
