#!/usr/bin/env python3
"""Fig. 12-style device comparison: FEATHER vs Gemmini / Xilinx DPU / Edge TPU.

Runs every ResNet-50 convolution layer through the four device models and
prints per-layer normalised throughput (throughput / #PEs / clock, i.e.
achieved MACs per PE per cycle) plus the geomean speedups the paper headlines.

Run with:  python examples/fpga_device_comparison.py
"""

from repro.experiments import fig12


def main() -> None:
    result = fig12.run()

    devices = list(result.per_device)
    print(f"{'layer':24s}" + "".join(f"{d:>12s}" for d in devices))
    for i, layer in enumerate(result.layers):
        row = "".join(f"{result.per_device[d][i]:12.3f}" for d in devices)
        print(f"{layer:24s}{row}")

    print("\nGeomean speedup of FEATHER over each baseline "
          "(paper: Gemmini 3.91x, Xilinx DPU 2.65x, Edge TPU 4.56x):")
    for name, speedup in result.speedups().items():
        print(f"  {name:12s}: {speedup:.2f}x")


if __name__ == "__main__":
    main()
