#!/usr/bin/env python3
"""Scenario-matrix quickstart: declare a sweep, run it twice, diff a record.

This example

1. expands a small workload x architecture x search-config cross product
   into a run plan,
2. executes it through the co-search engine with content-addressed artifact
   caching (the second pass is served entirely from the artifacts),
3. replays one record from its embedded seed and verifies the replay is
   bit-identical — the reproducibility contract every scenario record
   carries.

The full built-in matrix (paper-figure ports, depthwise/pointwise and
batched coverage sweeps, golden cells) is available from the CLI:

    PYTHONPATH=src python -m repro.scenarios list
    PYTHONPATH=src python -m repro.scenarios run --filter smoke

Run with:  PYTHONPATH=src python examples/scenario_matrix.py
"""

import tempfile
from pathlib import Path

from repro.scenarios import (
    ScenarioMatrix,
    SearchConfig,
    diff_payloads,
    rerun_record,
    run_matrix,
)


def main() -> None:
    quick = SearchConfig(name="quick", metric="edp", max_mappings=10)
    matrix = ScenarioMatrix(name="example").cross(
        workload_sets=["resnet50[:2]", "bert_head_sweep[:2]"],
        arches=["FEATHER", "Eyeriss-like"],
        configs=[quick])
    print(f"Plan ({len(matrix)} cells):")
    for scenario in matrix:
        print(f"  {scenario.name}")

    with tempfile.TemporaryDirectory() as tmp:
        runs_dir = Path(tmp)
        first = run_matrix(matrix, runs_dir=runs_dir)
        print("\nFirst pass:")
        for result in first.results:
            record = result.record
            print(f"  {record.scenario}: "
                  f"{record.totals['total_cycles']:.4g} cycles, "
                  f"{record.totals['energy_per_mac_pj']:.2f} pJ/MAC "
                  f"(seed={record.seed}, key={record.key[:12]}...)")

        second = run_matrix(matrix, runs_dir=runs_dir)
        print(f"\nSecond pass: {second.cached_count}/{len(second.results)} "
              f"cells served from the artifact cache")
        print(f"Summary artifacts: {first.summary_csv.name}, "
              f"{first.summary_md.name}")

    record = first.results[0].record
    replay = rerun_record(record, workers=2)
    diffs = diff_payloads(record.deterministic_payload(),
                          replay.deterministic_payload())
    assert not diffs, diffs
    print(f"\nReplayed {record.scenario!r} with its embedded seed on 2 "
          f"workers: bit-identical.")


if __name__ == "__main__":
    main()
