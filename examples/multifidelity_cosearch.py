"""Multi-fidelity co-search: analytical shortlist, simulator verification.

The analytical cost model ranks thousands of (mapping, layout) candidates
per second but prices every layout on FEATHER as stall-free (reorder in
reduction); the cycle-level simulator measures bank conflicts from the
actual StaB access stream but costs milliseconds-to-seconds per cell.
Multi-fidelity search composes them: rank the full candidate space
analytically, then let the simulator re-price only the top-k.

This script shows both outcomes on micro workloads:

* cells where the simulator confirms the analytical winner (agreement), and
* the 7x7/stride-2 head conv, where every layout ties analytically and the
  simulator breaks the tie with a genuinely conflict-free layout.

Run with ``PYTHONPATH=src python examples/multifidelity_cosearch.py``.
"""

from repro.backends import multifidelity_search, multifidelity_search_layer
from repro.layout.library import conv_layout_library
from repro.layoutloop.arch import feather_arch
from repro.workloads.micro import micro_gemm_layers, resnet50_head_micro


def main() -> None:
    arch = feather_arch(4, 4)

    print("== micro GEMMs on FEATHER-4x4 (latency, top-3 verified) ==")
    result = multifidelity_search(arch, micro_gemm_layers(),
                                  model_name="micro_gemms",
                                  metric="latency", max_mappings=6, top_k=3)
    for layer, count in result.layers:
        best = layer.best
        print(f"  {layer.workload:20s} x{count}: {best.layout.name:10s} "
              f"analytical {best.analytical.total_cycles:7.1f} cy, "
              f"simulated {best.simulated.total_cycles:7.1f} cy "
              f"(delta {best.cycle_delta():+6.1%}, rank {best.rank})")
    print(f"  verified winners match pure-analytical search: "
          f"{result.agreement}")

    print("\n== head conv on FEATHER-8x8: the simulator breaks a tie ==")
    workload = resnet50_head_micro()
    layer = multifidelity_search_layer(
        feather_arch(8, 8), workload, metric="latency", max_mappings=8,
        top_k=len(conv_layout_library()))
    for candidate in layer.candidates:
        marker = " <- verified winner" if candidate is layer.best else ""
        print(f"  rank {candidate.rank}: {candidate.layout.name:12s} "
              f"simulated {candidate.simulated.total_cycles:7.1f} cy, "
              f"read slowdown "
              f"{candidate.simulated.extra['read_slowdown']:.3f}{marker}")
    assert layer.best.simulated.extra["read_slowdown"] == 1.0
    print("  analytical search saw all layouts as equal (RIR prices them "
          "stall-free);\n  the simulator picked one that really is.")


if __name__ == "__main__":
    main()
