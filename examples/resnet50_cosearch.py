#!/usr/bin/env python3
"""Layoutloop (dataflow, layout) co-search over ResNet-50 layers.

Reproduces the core of the paper's evaluation flow (§V/§VI-C) on a few
representative layers: for each layer, search the best (dataflow, layout) pair
by energy-delay product for FEATHER and for three baselines, then print the
per-layer and aggregate comparison.

All searches run through the shared engine (`repro.search`), which memoizes
cost-model evaluations, prunes with admissible bounds, and can fan the
unique layer shapes out across worker processes (`--workers N`, results are
bit-identical to serial).

Run with:  python examples/resnet50_cosearch.py  [--full] [--workers N]
"""

import argparse

from repro.baselines import eyeriss_like, nvdla_like, sigma_like
from repro.layoutloop import feather_arch
from repro.search import SearchEngine, search_models
from repro.workloads import resnet50_layer, resnet50_layers


def per_layer_demo(layer_indices=(1, 14, 41)) -> None:
    print("Per-layer co-search (metric: EDP)")
    print(f"{'layer':22s} {'arch':14s} {'dataflow':28s} {'layout':12s} "
          f"{'util':>6s} {'slowdown':>9s} {'pJ/MAC':>7s}")
    engines = {arch.name: SearchEngine(arch, max_mappings=80)
               for arch in (nvdla_like(), eyeriss_like(), feather_arch())}
    for idx in layer_indices:
        layer = resnet50_layer(idx)
        for engine in engines.values():
            result = engine.search_layer(layer)
            arch = engine.arch
            report = result.best_report
            print(f"{layer.name:22s} {arch.name:14s} "
                  f"{result.best_mapping.name[:28]:28s} {result.best_layout.name:12s} "
                  f"{report.utilization:6.2f} {report.slowdown:9.2f} "
                  f"{report.energy_per_mac_pj:7.2f}")
        print()


def full_model_comparison(max_layers=None, workers=None) -> None:
    layers = resnet50_layers(include_fc=False)
    if max_layers:
        layers = layers[:max_layers]
    arches = [nvdla_like(), eyeriss_like(), sigma_like(layout="HWC_C32"),
              feather_arch()]
    print(f"Whole-model comparison over {len(layers)} ResNet-50 layers "
          f"(deduplicated by shape)")
    costs = search_models(arches, layers, model_name="resnet50",
                          max_mappings=60, workers=workers)
    feather = costs["FEATHER"]
    print(f"{'arch':22s} {'cycles':>14s} {'norm lat':>9s} {'pJ/MAC':>8s} "
          f"{'norm energy':>12s} {'avg util':>9s} {'stall %':>8s}")
    for name, cost in costs.items():
        print(f"{name:22s} {cost.total_cycles:14.0f} "
              f"{cost.total_cycles / feather.total_cycles:9.2f} "
              f"{cost.energy_per_mac_pj:8.2f} "
              f"{cost.energy_per_mac_pj / feather.energy_per_mac_pj:12.2f} "
              f"{cost.avg_utilization:9.2f} {cost.stall_fraction * 100:8.1f}")
    print(f"\nLayouts FEATHER switches between: {feather.layouts_used()}")
    print(f"Engine: {feather.search_stats}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the whole 53-layer model (slower)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the co-search fan-out "
                             "(default: REPRO_SEARCH_WORKERS or serial)")
    args = parser.parse_args()

    per_layer_demo()
    full_model_comparison(max_layers=None if args.full else 16,
                          workers=args.workers)


if __name__ == "__main__":
    main()
