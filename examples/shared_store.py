"""Two Sessions sharing one disk-backed result store.

The story: the in-memory caches of a :class:`repro.api.Session` die with
the process, so a fleet of serve replicas (or tonight's session after
yesterday's sweep) would each pay every search again.  Pointing sessions
at one ``store_path`` gives them a shared, content-addressed sqlite tier:
whoever finishes a request first publishes the response payload under its
content key, and every other session — concurrently or weeks later —
serves it from disk with ``served_from == "store"`` instead of
re-running the search.  This is the programmatic twin of launching serve
replicas with a common ``--store`` flag.

Run me:  PYTHONPATH=src python examples/shared_store.py
"""

import tempfile
from pathlib import Path

from repro.api import SearchRequest, Session

request = SearchRequest(workloads="resnet50[:4]", arch="FEATHER",
                        model="resnet50-head", max_mappings=20)

with tempfile.TemporaryDirectory() as tmp:
    store = Path(tmp) / "fleet.sqlite"

    # -- 1. Replica A pays for the search once and publishes the result.
    with Session(name="replica-a", store_path=store) as a:
        first = a.run(request)
        print(f"replica-a: searched {first.model}: "
              f"{first.totals['total_cycles']:.4g} cycles "
              f"(served_from={first.served_from}, "
              f"executed={a.stats.executed})")
        print(f"store    : {a.store.describe()['entries']} entry, "
              f"{a.store.describe()['bytes']} bytes on disk")

    # -- 2. Replica B — a different process in real deployments — serves
    #       the identical request from the shared store: no search runs.
    with Session(name="replica-b", store_path=store) as b:
        second = b.run(request)
        print(f"replica-b: served_from={second.served_from}, "
              f"executed={b.stats.executed}, "
              f"store_hits={b.stats.store_hits}")
        print(f"identical: totals match={second.totals == first.totals}, "
              f"key match={second.key == first.key}")
